//! The offline recursive curve-fitting template of Fig. 8.
//!
//! ```text
//! 1. Fit a curve of type c to S
//! 2. Find point (x_i, y_i) in S with maximum deviation from curve
//! 3. If deviation <= ε, return S
//! 4. Else:
//!    (a) fit a curve to the subsequence ending at (x_{i-1}, y_{i-1}), S1
//!    (b) fit a curve to the subsequence starting at (x_i, y_i), S2
//!    (c) if (x_i, y_i) is closer to the curve from (a), make it the last
//!        element of S1; else make it the first element of S2
//!    (d) recursively apply the algorithm to S1 and S2
//! ```
//!
//! Unlike Schneider's original Bézier fitter the template imposes no
//! continuity between segments, and steps (a)–(c) decide which side owns the
//! breakpoint (the paper's adjustment, §5.1).

use super::{effective_epsilon, value_scale, Breaker};
use saq_curves::{max_deviation, Curve, CurveFitter};
use saq_curves::{BezierFitter, EndpointInterpolator, RegressionFitter};
use saq_sequence::{Point, Sequence};

/// Tunable design choices of the offline template — exposed so the
/// ablation experiments (`exp_ablation`) can isolate each one's effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakOptions {
    /// Steps 4(a)–(c) of Fig. 8: decide which side owns the breakpoint by
    /// fitting both candidate subsequences. When disabled, the breakpoint
    /// always becomes the first element of the right subsequence
    /// (Schneider's original behaviour, minus the shared endpoint).
    pub assign_breakpoint_side: bool,
    /// Fold singleton ranges into a neighbour when the merge fits within ε.
    pub merge_singletons: bool,
    /// Greedily merge *any* adjacent ranges that jointly fit within ε.
    pub coalesce: bool,
}

impl Default for BreakOptions {
    fn default() -> Self {
        BreakOptions { assign_breakpoint_side: true, merge_singletons: true, coalesce: false }
    }
}

/// Fig. 8 instantiated over an arbitrary curve family.
#[derive(Debug, Clone)]
pub struct OfflineBreaker<F> {
    fitter: F,
    /// Error tolerance ε: maximum allowed vertical deviation of any sample
    /// from its segment's fitted curve.
    epsilon: f64,
    options: BreakOptions,
}

impl<F: CurveFitter> OfflineBreaker<F> {
    /// Creates a breaker with tolerance `epsilon >= 0` and default options.
    ///
    /// # Panics
    /// Panics on negative or non-finite `epsilon` (caller bug).
    pub fn new(fitter: F, epsilon: f64) -> Self {
        Self::with_options(fitter, epsilon, BreakOptions::default())
    }

    /// Like [`OfflineBreaker::new`] but with post-hoc coalescing enabled:
    /// the top-down recursion can leave adjacent ranges that would jointly
    /// fit within ε (a split high up the recursion is never revisited);
    /// coalescing merges them, strengthening §5.1's fragmentation-avoidance
    /// requirement without violating the ε bound.
    pub fn with_coalescing(fitter: F, epsilon: f64) -> Self {
        Self::with_options(
            fitter,
            epsilon,
            BreakOptions { coalesce: true, ..BreakOptions::default() },
        )
    }

    /// Full control over the template's design choices (ablations).
    ///
    /// # Panics
    /// Panics on negative or non-finite `epsilon` (caller bug).
    pub fn with_options(fitter: F, epsilon: f64, options: BreakOptions) -> Self {
        assert!(epsilon.is_finite() && epsilon >= 0.0, "epsilon must be finite and >= 0");
        OfflineBreaker { fitter, epsilon, options }
    }

    /// The configured tolerance.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The configured options.
    pub fn options(&self) -> BreakOptions {
        self.options
    }

    fn break_rec(&self, pts: &[Point], lo: usize, hi: usize, out: &mut Vec<(usize, usize)>) {
        let len = hi - lo + 1;
        // Too short to split further (or to fit): emit as one segment.
        if len <= self.fitter.min_points() {
            out.push((lo, hi));
            return;
        }
        let run = &pts[lo..=hi];
        let curve = match self.fitter.fit(run) {
            Ok(c) => c,
            Err(_) => {
                // Unfittable run (degenerate data): emit rather than loop.
                out.push((lo, hi));
                return;
            }
        };
        let dev = max_deviation(&curve, run).expect("non-empty run");
        if dev.value <= effective_epsilon(self.epsilon, value_scale(run)) {
            out.push((lo, hi));
            return;
        }
        // Absolute index of the worst point. Degenerate splits at the ends:
        // peel one point off so recursion strictly shrinks.
        let split = lo + dev.index;
        if split == lo {
            out.push((lo, lo));
            self.break_rec(pts, lo + 1, hi, out);
            return;
        }
        if split == hi {
            self.break_rec(pts, lo, hi - 1, out);
            out.push((hi, hi));
            return;
        }
        // Steps (a)-(c): which side owns the breakpoint?
        let (left_end, right_start) = if self.options.assign_breakpoint_side {
            let worst = pts[split];
            let left_dist = self
                .fitter
                .fit(&pts[lo..split]) // S1 without the breakpoint
                .map(|c| (c.eval(worst.t) - worst.v).abs())
                .unwrap_or(f64::INFINITY);
            let right_dist = self
                .fitter
                .fit(&pts[split..=hi]) // S2 including the breakpoint
                .map(|c| (c.eval(worst.t) - worst.v).abs())
                .unwrap_or(f64::INFINITY);
            if left_dist <= right_dist {
                (split, split + 1) // breakpoint is the last element of S1
            } else {
                (split - 1, split) // breakpoint is the first element of S2
            }
        } else {
            // Ablation: always give the breakpoint to the right side.
            (split - 1, split)
        };
        self.break_rec(pts, lo, left_end, out);
        self.break_rec(pts, right_start, hi, out);
    }
}

impl<F: CurveFitter> OfflineBreaker<F> {
    /// Post-pass against fragmentation (§5.1's third requirement): a
    /// singleton range is folded into an adjacent range whenever the merged
    /// run still fits within ε. Singletons that genuinely encode an abrupt
    /// change (no ε-respecting merge exists) are kept.
    fn merge_singletons(
        &self,
        pts: &[Point],
        mut ranges: Vec<(usize, usize)>,
    ) -> Vec<(usize, usize)> {
        // Deviation of a merged run, pre-compared against that run's own
        // effective tolerance: `Some(dev)` only when the merge fits.
        let fit_of = |lo: usize, hi: usize| -> Option<f64> {
            let run = &pts[lo..=hi];
            let dev = match self.fitter.fit(run) {
                Ok(c) => max_deviation(&c, run).map(|d| d.value).unwrap_or(f64::INFINITY),
                Err(_) => f64::INFINITY,
            };
            (dev <= effective_epsilon(self.epsilon, value_scale(run))).then_some(dev)
        };
        let mut changed = true;
        while changed {
            changed = false;
            let mut i = 0;
            while i < ranges.len() {
                let (lo, hi) = ranges[i];
                if lo != hi || ranges.len() == 1 {
                    i += 1;
                    continue;
                }
                let left = (i > 0).then(|| fit_of(ranges[i - 1].0, hi)).flatten();
                let right = (i + 1 < ranges.len()).then(|| fit_of(lo, ranges[i + 1].1)).flatten();
                let take_left = left.is_some() && (right.is_none() || left <= right);
                let take_right = !take_left && right.is_some();
                if take_left {
                    ranges[i - 1].1 = hi;
                    ranges.remove(i);
                    changed = true;
                } else if take_right {
                    ranges[i + 1].0 = lo;
                    ranges.remove(i);
                    changed = true;
                } else {
                    i += 1;
                }
            }
        }
        ranges
    }

    /// Greedy adjacent-pair merging while the merged run fits within ε.
    fn coalesce_ranges(
        &self,
        pts: &[Point],
        mut ranges: Vec<(usize, usize)>,
    ) -> Vec<(usize, usize)> {
        let fits = |lo: usize, hi: usize| -> bool {
            let run = &pts[lo..=hi];
            match self.fitter.fit(run) {
                Ok(c) => max_deviation(&c, run)
                    .is_some_and(|d| d.value <= effective_epsilon(self.epsilon, value_scale(run))),
                Err(_) => false,
            }
        };
        let mut changed = true;
        while changed {
            changed = false;
            let mut i = 0;
            while i + 1 < ranges.len() {
                let (lo, _) = ranges[i];
                let (_, hi) = ranges[i + 1];
                if fits(lo, hi) {
                    ranges[i] = (lo, hi);
                    ranges.remove(i + 1);
                    changed = true;
                } else {
                    i += 1;
                }
            }
        }
        ranges
    }
}

impl<F: CurveFitter> Breaker for OfflineBreaker<F> {
    fn break_ranges(&self, seq: &Sequence) -> Vec<(usize, usize)> {
        if seq.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        self.break_rec(seq.points(), 0, seq.len() - 1, &mut out);
        if self.options.merge_singletons {
            out = self.merge_singletons(seq.points(), out);
        }
        if self.options.coalesce {
            out = self.coalesce_ranges(seq.points(), out);
        }
        out
    }
}

/// The paper's preferred instantiation: interpolation lines through run
/// endpoints. "Effectively breaks sequences at extremum points... the
/// algorithm's run time is O(#peaks · n)" (§5.1).
#[derive(Debug, Clone)]
pub struct LinearInterpolationBreaker(OfflineBreaker<EndpointInterpolator>);

impl LinearInterpolationBreaker {
    /// Creates the breaker with tolerance ε.
    pub fn new(epsilon: f64) -> Self {
        LinearInterpolationBreaker(OfflineBreaker::new(EndpointInterpolator, epsilon))
    }

    /// Like [`LinearInterpolationBreaker::new`] with post-hoc coalescing of
    /// adjacent ranges that jointly fit within ε.
    pub fn coalescing(epsilon: f64) -> Self {
        LinearInterpolationBreaker(OfflineBreaker::with_coalescing(EndpointInterpolator, epsilon))
    }

    /// The configured tolerance.
    pub fn epsilon(&self) -> f64 {
        self.0.epsilon()
    }
}

impl Breaker for LinearInterpolationBreaker {
    fn break_ranges(&self, seq: &Sequence) -> Vec<(usize, usize)> {
        self.0.break_ranges(seq)
    }
}

/// Fig. 8 instantiated with least-squares regression lines.
#[derive(Debug, Clone)]
pub struct LinearRegressionBreaker(OfflineBreaker<RegressionFitter>);

impl LinearRegressionBreaker {
    /// Creates the breaker with tolerance ε.
    pub fn new(epsilon: f64) -> Self {
        LinearRegressionBreaker(OfflineBreaker::new(RegressionFitter, epsilon))
    }
}

impl Breaker for LinearRegressionBreaker {
    fn break_ranges(&self, seq: &Sequence) -> Vec<(usize, usize)> {
        self.0.break_ranges(seq)
    }
}

/// Fig. 8 instantiated with Schneider-fitted cubic Bézier curves (the
/// "modified Bézier curve" instantiation).
#[derive(Debug, Clone)]
pub struct BezierBreaker(OfflineBreaker<BezierFitter>);

impl BezierBreaker {
    /// Creates the breaker with tolerance ε and default Newton–Raphson
    /// iteration count.
    pub fn new(epsilon: f64) -> Self {
        BezierBreaker(OfflineBreaker::new(BezierFitter::default(), epsilon))
    }
}

impl Breaker for BezierBreaker {
    fn break_ranges(&self, seq: &Sequence) -> Vec<(usize, usize)> {
        self.0.break_ranges(seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brk::assert_partition;
    use saq_sequence::generators::{goalpost, piecewise_linear, GoalpostSpec};

    fn seq(vals: &[f64]) -> Sequence {
        Sequence::from_samples(vals).unwrap()
    }

    #[test]
    fn straight_line_is_one_segment() {
        let s = seq(&(0..50).map(|i| 2.0 * i as f64 + 1.0).collect::<Vec<_>>());
        for ranges in [
            LinearInterpolationBreaker::new(0.1).break_ranges(&s),
            LinearRegressionBreaker::new(0.1).break_ranges(&s),
        ] {
            assert_eq!(ranges, vec![(0, 49)]);
        }
    }

    #[test]
    fn tent_breaks_at_apex() {
        // Tent with apex at index 10.
        let vals: Vec<f64> =
            (0..=20).map(|i| if i <= 10 { i as f64 } else { 20.0 - i as f64 }).collect();
        let s = seq(&vals);
        let ranges = LinearInterpolationBreaker::new(0.5).break_ranges(&s);
        assert_partition(&ranges, 21);
        assert_eq!(ranges.len(), 2, "{ranges:?}");
        // The apex (index 10) ends up on exactly one side, adjacent to the cut.
        let cut = ranges[1].0;
        assert!((10..=11).contains(&cut), "cut at {cut}");
    }

    #[test]
    fn goalpost_breaks_at_extrema() {
        let s = goalpost(GoalpostSpec::default());
        let breaker = LinearInterpolationBreaker::new(1.0);
        let ranges = breaker.break_ranges(&s);
        assert_partition(&ranges, s.len());
        // Two peaks + valley: at least 4 segments (up/down/up/down), and the
        // tolerance keeps fragmentation low.
        assert!(ranges.len() >= 4, "{}", ranges.len());
        assert!(ranges.len() <= 12, "{}", ranges.len());
    }

    #[test]
    fn epsilon_controls_granularity() {
        let s = goalpost(GoalpostSpec { noise: 0.15, ..GoalpostSpec::default() });
        let coarse = LinearInterpolationBreaker::new(2.0).break_ranges(&s).len();
        let fine = LinearInterpolationBreaker::new(0.05).break_ranges(&s).len();
        assert!(fine > coarse, "fine {fine} coarse {coarse}");
    }

    #[test]
    fn piecewise_linear_recovers_knots() {
        let s = piecewise_linear(&[(0.0, 0.0), (10.0, 20.0), (20.0, 5.0), (30.0, 25.0)]);
        let breaker = LinearInterpolationBreaker::new(0.5);
        let bps = breaker.breakpoints(&s);
        // Knots at t = 10 and t = 20 (indices 10, 20); breakpoint may land on
        // either side of the knot.
        assert_eq!(bps.len(), 2, "{bps:?}");
        assert!((9..=11).contains(&bps[0]), "{bps:?}");
        assert!((19..=21).contains(&bps[1]), "{bps:?}");
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let b = LinearInterpolationBreaker::new(1.0);
        assert!(b.break_ranges(&Sequence::new(vec![]).unwrap()).is_empty());
        assert_eq!(b.break_ranges(&seq(&[5.0])), vec![(0, 0)]);
        assert_eq!(b.break_ranges(&seq(&[5.0, 9.0])), vec![(0, 1)]);
    }

    #[test]
    fn zero_epsilon_still_terminates() {
        let vals: Vec<f64> = (0..30).map(|i| ((i * 7919) % 13) as f64).collect();
        let s = seq(&vals);
        let ranges = LinearInterpolationBreaker::new(0.0).break_ranges(&s);
        assert_partition(&ranges, 30);
        // Every segment must fit exactly within ε=0: endpoint lines through
        // 2 points always do; longer segments must be collinear runs.
        for &(lo, hi) in &ranges {
            if hi - lo >= 2 {
                let run = &s.points()[lo..=hi];
                let line = saq_curves::Line::through(run[0], run[run.len() - 1]).unwrap();
                for p in run {
                    assert!((line.eval(p.t) - p.v).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn deviation_bound_holds_for_all_instantiations() {
        let s = goalpost(GoalpostSpec { noise: 0.3, ..GoalpostSpec::default() });
        let eps = 1.5;
        // Interpolation: every segment of length >= 2 fits within eps.
        let ranges = LinearInterpolationBreaker::new(eps).break_ranges(&s);
        for &(lo, hi) in &ranges {
            if hi > lo {
                let run = &s.points()[lo..=hi];
                let line = EndpointInterpolator.fit(run).unwrap();
                let d = max_deviation(&line, run).unwrap();
                assert!(d.value <= eps + 1e-9, "segment ({lo},{hi}) dev {}", d.value);
            }
        }
        // Regression instantiation honours the same bound.
        let ranges = LinearRegressionBreaker::new(eps).break_ranges(&s);
        for &(lo, hi) in &ranges {
            if hi > lo {
                let run = &s.points()[lo..=hi];
                if let Ok(line) = RegressionFitter.fit(run) {
                    let d = max_deviation(&line, run).unwrap();
                    assert!(d.value <= eps + 1e-9, "segment ({lo},{hi}) dev {}", d.value);
                }
            }
        }
    }

    #[test]
    fn bezier_breaker_handles_smooth_data() {
        let vals: Vec<f64> = (0..80).map(|i| (i as f64 * 0.15).sin() * 10.0).collect();
        let s = seq(&vals);
        let ranges = BezierBreaker::new(1.0).break_ranges(&s);
        assert_partition(&ranges, 80);
        // Smooth sinusoid: Bézier needs fewer segments than a fine-grained
        // linear breaker.
        let linear = LinearInterpolationBreaker::new(1.0).break_ranges(&s);
        assert!(ranges.len() <= linear.len(), "bezier {} linear {}", ranges.len(), linear.len());
    }

    #[test]
    fn fragmentation_avoided_on_clean_data() {
        // §5.1: "Most resulting subsequences should be of length > 2".
        let s = goalpost(GoalpostSpec::default());
        let ranges = LinearInterpolationBreaker::new(0.5).break_ranges(&s);
        let long = ranges.iter().filter(|(lo, hi)| hi - lo + 1 > 2).count();
        assert!(long * 2 >= ranges.len(), "too fragmented: {ranges:?}");
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn negative_epsilon_rejected() {
        let _ = LinearInterpolationBreaker::new(-1.0);
    }

    /// ε = 0 with the ε-relative comparison: regression fits through
    /// exactly-linear data carry rounding residue but must not split it,
    /// at any magnitude.
    #[test]
    fn zero_epsilon_keeps_exactly_linear_data_whole() {
        for (slope, intercept) in [(0.0, 42.0), (2.5, 1.0e6)] {
            let s = seq(&(0..50).map(|i| slope * i as f64 + intercept).collect::<Vec<_>>());
            assert_eq!(
                LinearRegressionBreaker::new(0.0).break_ranges(&s),
                vec![(0, 49)],
                "slope {slope} intercept {intercept}"
            );
            assert_eq!(LinearInterpolationBreaker::new(0.0).break_ranges(&s), vec![(0, 49)]);
        }
    }

    #[test]
    fn coalescing_reduces_segments_but_keeps_epsilon_bound() {
        let s = goalpost(GoalpostSpec { noise: 0.2, ..GoalpostSpec::default() });
        let eps = 1.0;
        let plain = LinearInterpolationBreaker::new(eps).break_ranges(&s);
        let merged = LinearInterpolationBreaker::coalescing(eps).break_ranges(&s);
        assert_partition(&merged, s.len());
        assert!(merged.len() <= plain.len(), "merged {} plain {}", merged.len(), plain.len());
        for &(lo, hi) in &merged {
            if hi > lo {
                let run = &s.points()[lo..=hi];
                let line = EndpointInterpolator.fit(run).unwrap();
                assert!(max_deviation(&line, run).unwrap().value <= eps + 1e-9);
            }
        }
    }

    #[test]
    fn coalescing_does_not_merge_real_features() {
        // A tent cannot be coalesced into one segment: the apex deviates.
        let vals: Vec<f64> =
            (0..=20).map(|i| if i <= 10 { i as f64 } else { 20.0 - i as f64 }).collect();
        let s = seq(&vals);
        let ranges = LinearInterpolationBreaker::coalescing(0.5).break_ranges(&s);
        assert_eq!(ranges.len(), 2, "{ranges:?}");
    }

    /// Coverage + ordering invariant across every ablation combination: all
    /// eight `BreakOptions` settings still produce ordered partitions of
    /// `[0, n)`, on clean and noisy data.
    #[test]
    fn all_option_combinations_partition() {
        let inputs = [
            goalpost(GoalpostSpec::default()),
            goalpost(GoalpostSpec { noise: 0.4, ..GoalpostSpec::default() }),
            seq(&(0..40).map(|i| ((i * 7919) % 17) as f64).collect::<Vec<_>>()),
        ];
        for assign in [false, true] {
            for merge in [false, true] {
                for coalesce in [false, true] {
                    let options = BreakOptions {
                        assign_breakpoint_side: assign,
                        merge_singletons: merge,
                        coalesce,
                    };
                    for s in &inputs {
                        let breaker =
                            OfflineBreaker::with_options(EndpointInterpolator, 1.0, options);
                        assert_partition(&breaker.break_ranges(s), s.len());
                    }
                }
            }
        }
    }

    /// Error bound is independent of breakpoint-side assignment: with the
    /// Fig. 8 steps (a)-(c) disabled (breakpoint always opens the right
    /// subsequence), multi-point segments still fit within ε.
    #[test]
    fn error_bound_holds_without_side_assignment() {
        let s = goalpost(GoalpostSpec { noise: 0.3, ..GoalpostSpec::default() });
        let eps = 1.0;
        let options = BreakOptions { assign_breakpoint_side: false, ..BreakOptions::default() };
        let breaker = OfflineBreaker::with_options(EndpointInterpolator, eps, options);
        let ranges = breaker.break_ranges(&s);
        assert_partition(&ranges, s.len());
        for &(lo, hi) in &ranges {
            if hi > lo {
                let run = &s.points()[lo..=hi];
                let line = EndpointInterpolator.fit(run).unwrap();
                let d = max_deviation(&line, run).unwrap();
                assert!(d.value <= eps + 1e-9, "segment ({lo},{hi}) dev {}", d.value);
            }
        }
    }

    /// Singleton merging only removes singletons whose merge keeps the ε
    /// bound; disabling it never *reduces* the segment count, and enabling
    /// it never violates the bound.
    #[test]
    fn merge_singletons_is_conservative() {
        let s = goalpost(GoalpostSpec { noise: 0.35, ..GoalpostSpec::default() });
        let eps = 0.8;
        let without = OfflineBreaker::with_options(
            EndpointInterpolator,
            eps,
            BreakOptions { merge_singletons: false, ..BreakOptions::default() },
        )
        .break_ranges(&s);
        let with = OfflineBreaker::new(EndpointInterpolator, eps).break_ranges(&s);
        assert!(with.len() <= without.len(), "with {} without {}", with.len(), without.len());
        for &(lo, hi) in &with {
            if hi > lo {
                let run = &s.points()[lo..=hi];
                let line = EndpointInterpolator.fit(run).unwrap();
                let d = max_deviation(&line, run).unwrap();
                assert!(d.value <= eps + 1e-9, "segment ({lo},{hi}) dev {}", d.value);
            }
        }
    }

    /// The generic template honours ε for the regression instantiation under
    /// every option combination (regression lines always fit ≥ 2 points).
    #[test]
    fn regression_instantiation_error_bound_across_options() {
        let s = goalpost(GoalpostSpec { noise: 0.25, ..GoalpostSpec::default() });
        let eps = 1.2;
        for assign in [false, true] {
            for coalesce in [false, true] {
                let options = BreakOptions {
                    assign_breakpoint_side: assign,
                    merge_singletons: true,
                    coalesce,
                };
                let breaker = OfflineBreaker::with_options(RegressionFitter, eps, options);
                for &(lo, hi) in &breaker.break_ranges(&s) {
                    if hi > lo {
                        let run = &s.points()[lo..=hi];
                        let line = RegressionFitter.fit(run).unwrap();
                        let d = max_deviation(&line, run).unwrap();
                        assert!(
                            d.value <= eps + 1e-9,
                            "options {options:?}: segment ({lo},{hi}) dev {}",
                            d.value
                        );
                    }
                }
            }
        }
    }
}
