//! Breaking algorithms (§5).
//!
//! A breaking algorithm partitions a sequence into contiguous index ranges
//! ("meaningful subsequences") at points where behaviour changes
//! significantly. §5.1 requires breakers to be **consistent** (similar
//! sequences break at corresponding points), **robust** (inserting or
//! deleting a behaviour-preserving element shifts breakpoints by at most
//! one), and to **avoid fragmentation** (most segments longer than 2).
//!
//! * [`OfflineBreaker`] — the recursive curve-fitting template of Fig. 8,
//!   generic over any [`saq_curves::CurveFitter`];
//! * [`LinearInterpolationBreaker`] — the template instantiated with
//!   endpoint-interpolation lines; breaks at extrema in
//!   `O(#peaks · n)` and is the algorithm behind Figs. 6/7/9;
//! * [`LinearRegressionBreaker`] / [`BezierBreaker`] — the other two
//!   instantiations the paper studied;
//! * [`OnlineBreaker`] — sliding-window breaking while data streams in;
//! * [`DynamicProgrammingBreaker`] — the `O(n²)` cost-minimizing
//!   segmentation (`a·#segments + b·error`) the paper cites as the slow
//!   alternative.

mod dp;
mod offline;
mod online;

pub use dp::DynamicProgrammingBreaker;
pub use offline::{
    BezierBreaker, BreakOptions, LinearInterpolationBreaker, LinearRegressionBreaker,
    OfflineBreaker,
};
pub use online::{OnlineBreaker, WindowedPolynomialBreaker};

use saq_sequence::{Point, Sequence};

/// Relative slack absorbed into every deviation-vs-ε comparison: fitting a
/// curve through a window accumulates rounding residue proportional to the
/// data's magnitude (a least-squares line through constant data carries
/// ~1e-13 of it), so a strict `> ε` check at ε = 0 would split perfectly
/// representable data. 1e-12 of the window's magnitude sits above that
/// residue (regression-tested up to magnitude 1e6 and degree 3) while
/// staying far too small to erode a user-chosen ε.
pub(crate) const RELATIVE_EPSILON: f64 = 1e-12;

/// The effective tolerance for a window whose values reach magnitude
/// `scale`: ε plus the relative floating-point slack.
pub(crate) fn effective_epsilon(epsilon: f64, scale: f64) -> f64 {
    epsilon + RELATIVE_EPSILON * scale
}

/// The magnitude of a window's values (for [`effective_epsilon`]).
pub(crate) fn value_scale(points: &[Point]) -> f64 {
    points.iter().map(|p| p.v.abs()).fold(0.0, f64::max)
}

/// A breaking algorithm: partitions a sequence into contiguous inclusive
/// index ranges.
pub trait Breaker {
    /// Breaks `seq` into ordered, contiguous, inclusive `(start, end)` index
    /// ranges that partition `[0, seq.len())`. Empty input yields no ranges.
    fn break_ranges(&self, seq: &Sequence) -> Vec<(usize, usize)>;

    /// Breakpoints as the start indices of every range except the first.
    fn breakpoints(&self, seq: &Sequence) -> Vec<usize> {
        self.break_ranges(seq).iter().skip(1).map(|&(lo, _)| lo).collect()
    }
}

/// Validates that ranges partition `[0, n)` — shared test helper.
#[cfg(test)]
pub(crate) fn assert_partition(ranges: &[(usize, usize)], n: usize) {
    if n == 0 {
        assert!(ranges.is_empty());
        return;
    }
    assert!(!ranges.is_empty());
    assert_eq!(ranges[0].0, 0, "must start at 0: {ranges:?}");
    assert_eq!(ranges[ranges.len() - 1].1, n - 1, "must end at n-1: {ranges:?}");
    for w in ranges.windows(2) {
        assert_eq!(w[0].1 + 1, w[1].0, "ranges must be contiguous: {ranges:?}");
    }
    for &(lo, hi) in ranges {
        assert!(lo <= hi, "range must be non-empty: {ranges:?}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saq_sequence::Sequence;

    struct WholeBreaker;
    impl Breaker for WholeBreaker {
        fn break_ranges(&self, seq: &Sequence) -> Vec<(usize, usize)> {
            if seq.is_empty() {
                vec![]
            } else {
                vec![(0, seq.len() - 1)]
            }
        }
    }

    #[test]
    fn breakpoints_derived_from_ranges() {
        let s = Sequence::from_samples(&[1.0, 2.0, 3.0]).unwrap();
        assert!(WholeBreaker.breakpoints(&s).is_empty());
        struct TwoBreaker;
        impl Breaker for TwoBreaker {
            fn break_ranges(&self, seq: &Sequence) -> Vec<(usize, usize)> {
                vec![(0, 0), (1, seq.len() - 1)]
            }
        }
        assert_eq!(TwoBreaker.breakpoints(&s), vec![1]);
    }

    #[test]
    fn partition_helper_accepts_valid() {
        assert_partition(&[(0, 2), (3, 5)], 6);
        assert_partition(&[], 0);
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn partition_helper_rejects_gap() {
        assert_partition(&[(0, 1), (3, 5)], 6);
    }
}
