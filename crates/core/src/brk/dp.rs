//! Dynamic-programming segmentation.
//!
//! §5.1 describes "another approach we have taken using dynamic programming,
//! minimizing a cost function of the form
//! `a · (#segments) + b · (distance from approximating line)`" and notes it
//! is much slower than the interpolation breaker. The implementation here
//! minimizes `a·k + b·Σ SSE(segment)` over all segmentations, where
//! `SSE(segment)` is the sum of squared residuals of the segment's
//! least-squares line. Prefix sums give each segment's SSE in O(1), for an
//! overall O(n²) — the cost the paper contrasts with O(#peaks · n).

use super::Breaker;
use saq_sequence::Sequence;

/// Optimal (cost-minimizing) breaker.
#[derive(Debug, Clone, Copy)]
pub struct DynamicProgrammingBreaker {
    /// Per-segment cost `a` (controls how much each extra segment must pay
    /// for itself).
    pub segment_cost: f64,
    /// Error weight `b`.
    pub error_weight: f64,
}

impl DynamicProgrammingBreaker {
    /// Creates a DP breaker with cost `a · #segments + b · Σ SSE`.
    ///
    /// # Panics
    /// Panics unless both weights are positive and finite (caller bug).
    pub fn new(segment_cost: f64, error_weight: f64) -> Self {
        assert!(segment_cost > 0.0 && segment_cost.is_finite(), "segment_cost must be positive");
        assert!(error_weight > 0.0 && error_weight.is_finite(), "error_weight must be positive");
        DynamicProgrammingBreaker { segment_cost, error_weight }
    }

    /// Total cost of a given segmentation under this breaker's weights —
    /// exposed so tests and benches can verify optimality.
    pub fn cost_of(&self, seq: &Sequence, ranges: &[(usize, usize)]) -> f64 {
        let prefix = Prefix::new(seq);
        ranges
            .iter()
            .map(|&(lo, hi)| self.segment_cost + self.error_weight * prefix.sse(lo, hi))
            .sum()
    }
}

/// Prefix sums enabling O(1) per-segment regression SSE.
struct Prefix {
    st: Vec<f64>,
    sv: Vec<f64>,
    stt: Vec<f64>,
    stv: Vec<f64>,
    svv: Vec<f64>,
}

impl Prefix {
    fn new(seq: &Sequence) -> Prefix {
        let n = seq.len();
        let mut p = Prefix {
            st: vec![0.0; n + 1],
            sv: vec![0.0; n + 1],
            stt: vec![0.0; n + 1],
            stv: vec![0.0; n + 1],
            svv: vec![0.0; n + 1],
        };
        for (i, pt) in seq.points().iter().enumerate() {
            p.st[i + 1] = p.st[i] + pt.t;
            p.sv[i + 1] = p.sv[i] + pt.v;
            p.stt[i + 1] = p.stt[i] + pt.t * pt.t;
            p.stv[i + 1] = p.stv[i] + pt.t * pt.v;
            p.svv[i + 1] = p.svv[i] + pt.v * pt.v;
        }
        p
    }

    /// SSE of the least-squares line over inclusive range `[lo, hi]`.
    fn sse(&self, lo: usize, hi: usize) -> f64 {
        let n = (hi - lo + 1) as f64;
        if n < 2.0 {
            return 0.0;
        }
        let st = self.st[hi + 1] - self.st[lo];
        let sv = self.sv[hi + 1] - self.sv[lo];
        let stt = self.stt[hi + 1] - self.stt[lo];
        let stv = self.stv[hi + 1] - self.stv[lo];
        let svv = self.svv[hi + 1] - self.svv[lo];
        let ctt = stt - st * st / n;
        let ctv = stv - st * sv / n;
        let cvv = svv - sv * sv / n;
        if ctt.abs() < 1e-12 {
            // Degenerate abscissae: best horizontal line.
            return cvv.max(0.0);
        }
        (cvv - ctv * ctv / ctt).max(0.0)
    }

    /// Writes `best[i] + a + b · sse(i, j-1)` for every split point
    /// `i in 0..j` into `out`: the DP recurrence's inner loop as one
    /// sweep over the contiguous prefix-sum slices, branch-light enough
    /// to autovectorize. Same arithmetic and operation order as
    /// [`Prefix::sse`], so every cost is bit-identical to the scalar
    /// formulation.
    fn fill_costs(&self, j: usize, a: f64, b: f64, best: &[f64], out: &mut [f64]) {
        let (stj, svj, sttj, stvj, svvj) =
            (self.st[j], self.sv[j], self.stt[j], self.stv[j], self.svv[j]);
        let it = out
            .iter_mut()
            .zip(best)
            .zip(&self.st[..j])
            .zip(&self.sv[..j])
            .zip(&self.stt[..j])
            .zip(&self.stv[..j])
            .zip(&self.svv[..j])
            .enumerate();
        for (i, ((((((out, &prior), &sti), &svi), &stti), &stvi), &svvi)) in it {
            let n = (j - i) as f64;
            let st = stj - sti;
            let sv = svj - svi;
            let stt = sttj - stti;
            let stv = stvj - stvi;
            let svv = svvj - svvi;
            let ctt = stt - st * st / n;
            let ctv = stv - st * sv / n;
            let cvv = svv - sv * sv / n;
            let sse = if n < 2.0 {
                0.0
            } else if ctt.abs() < 1e-12 {
                cvv.max(0.0)
            } else {
                (cvv - ctv * ctv / ctt).max(0.0)
            };
            *out = prior + a + b * sse;
        }
    }
}

impl Breaker for DynamicProgrammingBreaker {
    fn break_ranges(&self, seq: &Sequence) -> Vec<(usize, usize)> {
        let n = seq.len();
        if n == 0 {
            return Vec::new();
        }
        let prefix = Prefix::new(seq);
        // best[j] = minimal cost of segmenting the first j points; j in 0..=n.
        let mut best = vec![f64::INFINITY; n + 1];
        let mut back = vec![0usize; n + 1];
        let mut cost = vec![0.0f64; n];
        best[0] = 0.0;
        for j in 1..=n {
            // Two passes: a vectorizable sweep filling every candidate
            // cost, then a scalar argmin where the first strict minimum
            // wins — the same tie rule as the fused loop, over
            // bit-identical costs.
            prefix.fill_costs(j, self.segment_cost, self.error_weight, &best[..j], &mut cost[..j]);
            let (mut best_cost, mut best_split) = (f64::INFINITY, 0);
            for (i, &c) in cost[..j].iter().enumerate() {
                if c < best_cost {
                    best_cost = c;
                    best_split = i;
                }
            }
            best[j] = best_cost;
            back[j] = best_split;
        }
        // Reconstruct ranges.
        let mut ranges = Vec::new();
        let mut j = n;
        while j > 0 {
            let i = back[j];
            ranges.push((i, j - 1));
            j = i;
        }
        ranges.reverse();
        ranges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brk::{assert_partition, LinearInterpolationBreaker};
    use saq_sequence::generators::piecewise_linear;

    fn seq(vals: &[f64]) -> Sequence {
        Sequence::from_samples(vals).unwrap()
    }

    #[test]
    fn line_stays_whole() {
        let s = seq(&(0..30).map(|i| i as f64 * 1.5 + 2.0).collect::<Vec<_>>());
        let ranges = DynamicProgrammingBreaker::new(1.0, 1.0).break_ranges(&s);
        assert_eq!(ranges, vec![(0, 29)]);
    }

    #[test]
    fn tent_splits_once() {
        let vals: Vec<f64> =
            (0..=20).map(|i| if i <= 10 { i as f64 } else { 20.0 - i as f64 }).collect();
        let s = seq(&vals);
        let ranges = DynamicProgrammingBreaker::new(1.0, 1.0).break_ranges(&s);
        assert_partition(&ranges, 21);
        assert_eq!(ranges.len(), 2, "{ranges:?}");
        assert!((10..=11).contains(&ranges[1].0), "{ranges:?}");
    }

    #[test]
    fn segment_cost_trades_off_error() {
        let s = piecewise_linear(&[(0.0, 0.0), (8.0, 8.0), (16.0, 0.0), (24.0, 8.0), (32.0, 0.0)]);
        let cheap_segments = DynamicProgrammingBreaker::new(0.01, 1.0).break_ranges(&s).len();
        let pricey_segments = DynamicProgrammingBreaker::new(100.0, 1.0).break_ranges(&s).len();
        assert!(cheap_segments >= 4, "cheap {cheap_segments}");
        assert_eq!(pricey_segments, 1, "pricey {pricey_segments}");
    }

    #[test]
    fn dp_cost_is_never_worse_than_interpolation_breaker() {
        // Optimality check: DP minimizes the cost, so any other segmentation
        // (here the fast breaker's) costs at least as much.
        let s = piecewise_linear(&[(0.0, 0.0), (10.0, 12.0), (20.0, 3.0), (30.0, 18.0)]);
        let dp = DynamicProgrammingBreaker::new(2.0, 1.0);
        let dp_ranges = dp.break_ranges(&s);
        let fast_ranges = LinearInterpolationBreaker::new(0.5).break_ranges(&s);
        assert!(dp.cost_of(&s, &dp_ranges) <= dp.cost_of(&s, &fast_ranges) + 1e-9);
    }

    #[test]
    fn prefix_sse_matches_direct_regression() {
        let vals = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let s = seq(&vals);
        let prefix = Prefix::new(&s);
        for lo in 0..vals.len() {
            for hi in lo..vals.len() {
                let run = &s.points()[lo..=hi];
                let direct = if run.len() < 2 {
                    0.0
                } else {
                    let line = saq_curves::Line::regression(run).unwrap();
                    run.iter()
                        .map(|p| {
                            let r = saq_curves::Curve::eval(&line, p.t) - p.v;
                            r * r
                        })
                        .sum()
                };
                let fast = prefix.sse(lo, hi);
                assert!((direct - fast).abs() < 1e-8, "({lo},{hi}): {direct} vs {fast}");
            }
        }
    }

    #[test]
    fn empty_and_singleton() {
        let dp = DynamicProgrammingBreaker::new(1.0, 1.0);
        assert!(dp.break_ranges(&Sequence::new(vec![]).unwrap()).is_empty());
        assert_eq!(dp.break_ranges(&seq(&[7.0])), vec![(0, 0)]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weights_rejected() {
        let _ = DynamicProgrammingBreaker::new(0.0, 1.0);
    }
}
