//! On-line breaking (§5.1): decide breakpoints while data streams in,
//! "based on the data seen so far with no overall view of the sequence".
//!
//! The implemented family slides a growing window, maintains the
//! least-squares line of the window incrementally (O(1) per point via
//! running sums), and emits a breakpoint when the incoming point — or the
//! refitted window — deviates from the line by more than ε. This trades the
//! global optimality of the offline template for single-pass operation; the
//! paper notes online algorithms' "obvious deficiency is possible lack of
//! accuracy".

use super::{effective_epsilon, Breaker};
use saq_sequence::{Point, Sequence};

/// Streaming sliding-window breaker with incremental regression.
#[derive(Debug, Clone, Copy)]
pub struct OnlineBreaker {
    epsilon: f64,
    /// Residual check of the incoming point uses `spread_factor * epsilon`
    /// as an early trigger before the exact window re-check; 1.0 means the
    /// same tolerance.
    min_segment: usize,
}

impl OnlineBreaker {
    /// Creates an online breaker with tolerance ε and a minimum segment
    /// length of 2.
    pub fn new(epsilon: f64) -> Self {
        Self::with_min_segment(epsilon, 2)
    }

    /// Creates an online breaker enforcing a minimum segment length
    /// (fragmentation control).
    ///
    /// # Panics
    /// Panics on invalid ε or `min_segment == 0` (caller bug).
    pub fn with_min_segment(epsilon: f64, min_segment: usize) -> Self {
        assert!(epsilon.is_finite() && epsilon >= 0.0, "epsilon must be finite and >= 0");
        assert!(min_segment >= 1, "min_segment must be >= 1");
        OnlineBreaker { epsilon, min_segment }
    }

    /// The configured tolerance.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }
}

/// Incremental simple-regression state over a window of points.
#[derive(Debug, Clone, Copy, Default)]
struct RunningFit {
    n: f64,
    st: f64,
    sv: f64,
    stt: f64,
    stv: f64,
}

impl RunningFit {
    fn push(&mut self, p: Point) {
        self.n += 1.0;
        self.st += p.t;
        self.sv += p.v;
        self.stt += p.t * p.t;
        self.stv += p.t * p.v;
    }

    /// `(slope, intercept)` of the current window; horizontal line until two
    /// distinct abscissae exist.
    fn line(&self) -> (f64, f64) {
        if self.n < 2.0 {
            return (0.0, if self.n > 0.0 { self.sv / self.n } else { 0.0 });
        }
        let denom = self.stt - self.st * self.st / self.n;
        if denom.abs() < 1e-12 {
            return (0.0, self.sv / self.n);
        }
        let slope = (self.stv - self.st * self.sv / self.n) / denom;
        let intercept = (self.sv - slope * self.st) / self.n;
        (slope, intercept)
    }

    fn residual(&self, p: Point) -> f64 {
        let (a, b) = self.line();
        (a * p.t + b - p.v).abs()
    }
}

impl Breaker for OnlineBreaker {
    fn break_ranges(&self, seq: &Sequence) -> Vec<(usize, usize)> {
        let pts = seq.points();
        let n = pts.len();
        if n == 0 {
            return Vec::new();
        }
        let mut ranges = Vec::new();
        let mut start = 0usize;
        let mut fit = RunningFit::default();
        fit.push(pts[0]);
        let mut scale = pts[0].v.abs();

        for (i, &p) in pts.iter().enumerate().skip(1) {
            // Tentatively extend the window.
            let mut candidate = fit;
            candidate.push(p);
            let window_len = i - start + 1;
            let tolerance = effective_epsilon(self.epsilon, scale.max(p.v.abs()));
            let over = candidate.residual(p) > tolerance
                || worst_residual(&candidate, &pts[start..=i]) > tolerance;
            if over && window_len > self.min_segment {
                // Close the current segment before p.
                ranges.push((start, i - 1));
                start = i;
                fit = RunningFit::default();
                fit.push(p);
                scale = p.v.abs();
            } else {
                fit = candidate;
                scale = scale.max(p.v.abs());
            }
        }
        ranges.push((start, n - 1));
        ranges
    }
}

fn worst_residual(fit: &RunningFit, window: &[Point]) -> f64 {
    window.iter().map(|&p| fit.residual(p)).fold(0.0, f64::max)
}

/// The paper's described online family (§5.1): "sliding a window,
/// interpolating a polynomial through it and breaking the sequence whenever
/// it deviates significantly from the polynomial". Each incoming point
/// tentatively extends the window; the window's least-squares polynomial of
/// the configured degree is refitted and the segment closes when any sample
/// deviates beyond ε.
///
/// Costlier than [`OnlineBreaker`] (refit per point) but follows curvature,
/// so smooth nonlinear runs stay unbroken.
#[derive(Debug, Clone, Copy)]
pub struct WindowedPolynomialBreaker {
    /// Polynomial degree fitted through the window.
    pub degree: usize,
    epsilon: f64,
    min_segment: usize,
}

impl WindowedPolynomialBreaker {
    /// Creates a windowed polynomial breaker.
    ///
    /// # Panics
    /// Panics on invalid ε, `degree > 12`, or `min_segment < degree + 1`
    /// (caller bug).
    pub fn new(degree: usize, epsilon: f64) -> Self {
        Self::with_min_segment(degree, epsilon, degree + 1)
    }

    /// As [`WindowedPolynomialBreaker::new`] with explicit fragmentation
    /// control.
    pub fn with_min_segment(degree: usize, epsilon: f64, min_segment: usize) -> Self {
        assert!(epsilon.is_finite() && epsilon >= 0.0, "epsilon must be finite and >= 0");
        assert!(degree <= 12, "degree must be <= 12");
        assert!(min_segment > degree, "min_segment must exceed the degree");
        WindowedPolynomialBreaker { degree, epsilon, min_segment }
    }

    /// The configured tolerance.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }
}

impl Breaker for WindowedPolynomialBreaker {
    fn break_ranges(&self, seq: &Sequence) -> Vec<(usize, usize)> {
        use saq_curves::{max_deviation, Polynomial};
        let pts = seq.points();
        let n = pts.len();
        if n == 0 {
            return Vec::new();
        }
        let mut ranges = Vec::new();
        let mut start = 0usize;
        for i in 1..n {
            let window = &pts[start..=i];
            let window_len = window.len();
            if window_len <= self.degree + 1 {
                continue; // exactly fittable, cannot deviate
            }
            let tolerance = effective_epsilon(self.epsilon, super::value_scale(window));
            let over = match Polynomial::fit(window, self.degree) {
                Ok(poly) => max_deviation(&poly, window).is_some_and(|d| d.value > tolerance),
                Err(_) => false, // degenerate window: keep growing
            };
            if over && window_len > self.min_segment {
                ranges.push((start, i - 1));
                start = i;
            }
        }
        ranges.push((start, n - 1));
        ranges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brk::assert_partition;
    use saq_sequence::generators::{goalpost, piecewise_linear, GoalpostSpec};

    fn seq(vals: &[f64]) -> Sequence {
        Sequence::from_samples(vals).unwrap()
    }

    #[test]
    fn straight_line_single_segment() {
        let s = seq(&(0..40).map(|i| 3.0 * i as f64).collect::<Vec<_>>());
        let ranges = OnlineBreaker::new(0.1).break_ranges(&s);
        assert_eq!(ranges, vec![(0, 39)]);
    }

    #[test]
    fn detects_slope_change() {
        let s = piecewise_linear(&[(0.0, 0.0), (15.0, 15.0), (30.0, 0.0)]);
        let ranges = OnlineBreaker::new(0.75).break_ranges(&s);
        assert_partition(&ranges, s.len());
        assert!(ranges.len() >= 2, "{ranges:?}");
        // A breakpoint lands near the knee at index 15.
        let near_knee = ranges.iter().any(|&(lo, _)| (13..=18).contains(&lo));
        assert!(near_knee, "{ranges:?}");
    }

    #[test]
    fn online_segments_respect_tolerance_at_close() {
        let s = goalpost(GoalpostSpec::default());
        let breaker = OnlineBreaker::new(1.0);
        let ranges = breaker.break_ranges(&s);
        assert_partition(&ranges, s.len());
        // Every *closed* segment (all but possibly the last) fits within ε
        // under its own regression line.
        for &(lo, hi) in &ranges[..ranges.len().saturating_sub(1)] {
            let run = &s.points()[lo..=hi];
            if run.len() < 2 {
                continue;
            }
            let line = saq_curves::Line::regression(run).unwrap();
            let worst = run
                .iter()
                .map(|p| (saq_curves::Curve::eval(&line, p.t) - p.v).abs())
                .fold(0.0, f64::max);
            assert!(worst <= 1.0 + 1e-9, "segment ({lo},{hi}) worst {worst}");
        }
    }

    #[test]
    fn min_segment_controls_fragmentation() {
        let vals: Vec<f64> = (0..60).map(|i| ((i * 31) % 7) as f64).collect();
        let s = seq(&vals);
        let frag = OnlineBreaker::with_min_segment(0.1, 1).break_ranges(&s);
        let chunky = OnlineBreaker::with_min_segment(0.1, 6).break_ranges(&s);
        assert!(chunky.len() < frag.len(), "chunky {} frag {}", chunky.len(), frag.len());
        assert!(chunky.iter().all(|(lo, hi)| hi - lo + 1 >= 2));
    }

    #[test]
    fn tiny_inputs() {
        let b = OnlineBreaker::new(0.5);
        assert!(b.break_ranges(&Sequence::new(vec![]).unwrap()).is_empty());
        assert_eq!(b.break_ranges(&seq(&[1.0])), vec![(0, 0)]);
        assert_eq!(b.break_ranges(&seq(&[1.0, 9.0])), vec![(0, 1)]);
    }

    #[test]
    fn online_close_to_offline_on_clean_data() {
        // The paper: online lacks accuracy but should be in the ballpark on
        // clean piecewise-linear data.
        let s = piecewise_linear(&[(0.0, 0.0), (10.0, 10.0), (20.0, 0.0), (30.0, 10.0)]);
        let online = OnlineBreaker::new(0.5).break_ranges(&s).len();
        let offline = crate::brk::LinearInterpolationBreaker::new(0.5).break_ranges(&s).len();
        assert!((online as i64 - offline as i64).abs() <= 2, "online {online} offline {offline}");
    }

    #[test]
    #[should_panic(expected = "min_segment")]
    fn zero_min_segment_rejected() {
        let _ = OnlineBreaker::with_min_segment(1.0, 0);
    }

    #[test]
    fn quadratic_window_follows_parabola() {
        // A parabola breaks a *linear* online breaker but not a quadratic
        // windowed one.
        let vals: Vec<f64> = (0..60).map(|i| 0.05 * (i as f64 - 30.0).powi(2)).collect();
        let s = seq(&vals);
        let quad = WindowedPolynomialBreaker::new(2, 0.5).break_ranges(&s);
        assert_eq!(quad, vec![(0, 59)], "quadratic fit covers the parabola");
        let lin = OnlineBreaker::new(0.5).break_ranges(&s);
        assert!(lin.len() > 1, "linear breaker must split the parabola");
    }

    #[test]
    fn windowed_poly_partitions_and_respects_eps_on_closed_segments() {
        let s = goalpost(GoalpostSpec { noise: 0.1, ..GoalpostSpec::default() });
        let breaker = WindowedPolynomialBreaker::new(2, 0.8);
        let ranges = breaker.break_ranges(&s);
        assert_partition(&ranges, s.len());
        for &(lo, hi) in &ranges[..ranges.len() - 1] {
            let run = &s.points()[lo..=hi];
            if run.len() >= 3 {
                let poly = saq_curves::Polynomial::fit(run, 2).unwrap();
                let worst = saq_curves::max_deviation(&poly, run).unwrap().value;
                assert!(worst <= 0.8 + 1e-9, "segment ({lo},{hi}) worst {worst}");
            }
        }
    }

    #[test]
    fn windowed_poly_degree_zero_tracks_level_shifts() {
        // Degree 0 = running constant: breaks exactly at level changes.
        let vals: Vec<f64> = (0..30)
            .map(|i| {
                if i < 10 {
                    1.0
                } else if i < 20 {
                    5.0
                } else {
                    2.0
                }
            })
            .collect();
        let s = seq(&vals);
        let ranges = WindowedPolynomialBreaker::new(0, 0.5).break_ranges(&s);
        assert_partition(&ranges, 30);
        assert_eq!(ranges.len(), 3, "{ranges:?}");
        assert_eq!(ranges[1].0, 10);
        assert_eq!(ranges[2].0, 20);
    }

    #[test]
    fn windowed_poly_tiny_inputs() {
        let b = WindowedPolynomialBreaker::new(2, 1.0);
        assert!(b.break_ranges(&Sequence::new(vec![]).unwrap()).is_empty());
        assert_eq!(b.break_ranges(&seq(&[1.0])), vec![(0, 0)]);
        assert_eq!(b.break_ranges(&seq(&[1.0, 99.0])), vec![(0, 1)]);
    }

    #[test]
    #[should_panic(expected = "degree")]
    fn windowed_poly_bad_min_segment() {
        let _ = WindowedPolynomialBreaker::with_min_segment(3, 1.0, 2);
    }

    /// Coverage + ordering invariant: every breaker output partitions
    /// `[0, n)` in order, across adversarial shapes and tolerances.
    #[test]
    fn coverage_and_ordering_on_adversarial_inputs() {
        let shapes: Vec<Vec<f64>> = vec![
            vec![0.0; 50],                                                  // constant
            (0..50).map(|i| if i % 2 == 0 { 0.0 } else { 10.0 }).collect(), // alternating
            (0..50).map(|i| ((i * 7919) % 23) as f64).collect(),            // pseudo-random
            (0..50).map(|i| (i as f64 * 0.4).sin() * 5.0).collect(),        // smooth
            (0..50).map(|i| if i == 25 { 100.0 } else { 0.0 }).collect(),   // lone spike
        ];
        for vals in &shapes {
            let s = seq(vals);
            for eps in [0.0, 0.5, 5.0] {
                assert_partition(&OnlineBreaker::new(eps).break_ranges(&s), s.len());
                assert_partition(&WindowedPolynomialBreaker::new(2, eps).break_ranges(&s), s.len());
            }
        }
    }

    /// Every *closed* segment (all but the last) respects `min_segment`:
    /// the window only closes once it has grown past the floor.
    #[test]
    fn closed_segments_respect_min_segment_floor() {
        let vals: Vec<f64> = (0..80).map(|i| ((i * 31) % 11) as f64).collect();
        let s = seq(&vals);
        for min_segment in [1usize, 2, 4, 8] {
            let ranges = OnlineBreaker::with_min_segment(0.1, min_segment).break_ranges(&s);
            assert_partition(&ranges, s.len());
            for &(lo, hi) in &ranges[..ranges.len() - 1] {
                assert!(
                    hi - lo + 1 >= min_segment,
                    "min_segment {min_segment} violated by ({lo},{hi})"
                );
            }
        }
    }

    /// Error bound at the moment of closing: the tentative window that
    /// triggered the break exceeded ε, so a zero tolerance on noisy data
    /// must fragment down to (near-)minimum segments rather than absorb
    /// deviating points.
    #[test]
    fn zero_epsilon_closes_eagerly_on_noisy_data() {
        let vals: Vec<f64> = (0..40).map(|i| ((i * 7) % 5) as f64).collect();
        let s = seq(&vals);
        let ranges = OnlineBreaker::new(0.0).break_ranges(&s);
        assert_partition(&ranges, s.len());
        // With ε = 0 and min_segment = 2, no closed segment can grow past
        // the floor: any third non-collinear point trips the bound.
        for &(lo, hi) in &ranges[..ranges.len() - 1] {
            let run = &s.points()[lo..=hi];
            let line = saq_curves::Line::regression(run).unwrap();
            let worst = run
                .iter()
                .map(|p| (saq_curves::Curve::eval(&line, p.t) - p.v).abs())
                .fold(0.0, f64::max);
            assert!(worst <= 1e-9, "segment ({lo},{hi}) worst {worst}");
        }
    }

    /// A constant sequence never deviates from its running fit: both online
    /// breakers keep it whole at any tolerance — including ε = 0, where the
    /// ε-relative comparison absorbs the fits' rounding residue.
    #[test]
    fn constant_sequence_is_one_segment() {
        let s = seq(&[7.5; 64]);
        assert_eq!(OnlineBreaker::new(0.0).break_ranges(&s), vec![(0, 63)]);
        assert_eq!(WindowedPolynomialBreaker::new(1, 0.0).break_ranges(&s), vec![(0, 63)]);
    }

    /// Regression (ROADMAP ε = 0 follow-up): the windowed polynomial fit
    /// carries ~1e-13 of least-squares residue, which used to split
    /// constant data at ε = 0. Deviation checks are now ε-relative, so
    /// exactly representable data stays whole at any degree and magnitude,
    /// while genuine structure still breaks.
    #[test]
    fn zero_epsilon_does_not_split_representable_data() {
        for magnitude in [1.0, 98.6, 1.0e6] {
            let s = seq(&[magnitude; 50]);
            for degree in 0..=3 {
                assert_eq!(
                    WindowedPolynomialBreaker::new(degree, 0.0).break_ranges(&s),
                    vec![(0, 49)],
                    "constant {magnitude} split at degree {degree}"
                );
            }
        }
        // A clean ramp is exactly a degree-1 polynomial.
        let ramp = seq(&(0..50).map(|i| 3.0 * i as f64 + 100.0).collect::<Vec<_>>());
        assert_eq!(WindowedPolynomialBreaker::new(1, 0.0).break_ranges(&ramp), vec![(0, 49)]);
        // A step is not: ε = 0 must still break it.
        let step: Vec<f64> = (0..40).map(|i| if i < 20 { 1.0 } else { 2.0 }).collect();
        assert!(WindowedPolynomialBreaker::new(1, 0.0).break_ranges(&seq(&step)).len() > 1);
    }
}
