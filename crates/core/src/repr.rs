//! Piecewise-function representation of sequences.
//!
//! "The stored sequences are represented as sequences of linear functions.
//! Each function is an approximation of a subsequence of the original
//! sequence" (§4.4). Each [`Segment`] keeps the representing function plus
//! the start/end points of the subsequence it approximates — the paper notes
//! start/end points are "part of the information obtained from the breaking
//! algorithm and are maintained with any representation".

use crate::error::{Error, Result};
use saq_curves::{Curve, CurveFitter};
use saq_sequence::{Point, Sequence};
use serde::{Deserialize, Serialize};

/// One represented subsequence: an index range of the original sequence,
/// its endpoints, and the fitted function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Segment<C> {
    /// Index of the first point (inclusive) in the original sequence.
    pub start_index: usize,
    /// Index of the last point (inclusive) in the original sequence.
    pub end_index: usize,
    /// First point of the subsequence.
    pub start: Point,
    /// Last point of the subsequence.
    pub end: Point,
    /// The representing function.
    pub curve: C,
}

impl<C: Curve> Segment<C> {
    /// Number of raw points covered.
    pub fn len(&self) -> usize {
        self.end_index - self.start_index + 1
    }

    /// Always at least one point.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Time span covered.
    pub fn span(&self) -> (f64, f64) {
        (self.start.t, self.end.t)
    }

    /// Representative slope of the segment: the derivative of the fitted
    /// function at the segment's mid-time.
    pub fn slope(&self) -> f64 {
        self.curve.derivative(0.5 * (self.start.t + self.end.t))
    }
}

/// Compression accounting for a representation (§5.2: "500 points sequences
/// are represented by about 10 function segments... about a factor of 12
/// reduction in space").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressionReport {
    /// Points in the original sequence.
    pub original_points: usize,
    /// Number of segments.
    pub segments: usize,
    /// Total stored parameters: per segment, the function's parameters plus
    /// two breakpoint coordinates (start/end time).
    pub parameters: usize,
}

impl CompressionReport {
    /// Space reduction factor `original_points / parameters`.
    pub fn ratio(&self) -> f64 {
        if self.parameters == 0 {
            return 1.0;
        }
        self.original_points as f64 / self.parameters as f64
    }
}

/// A sequence of fitted functions — the stored representation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionSeries<C> {
    segments: Vec<Segment<C>>,
    original_len: usize,
}

/// The representation used throughout the paper's experiments: lines.
pub type LinearSeries = FunctionSeries<saq_curves::Line>;

impl<C: Curve + Clone> FunctionSeries<C> {
    /// Builds a representation by fitting `fitter`'s curve family to each
    /// index range. Ranges must be non-empty, contiguous, in order, and
    /// partition `[0, seq.len())` — breakers guarantee this.
    pub fn build<F>(seq: &Sequence, ranges: &[(usize, usize)], fitter: &F) -> Result<Self>
    where
        F: CurveFitter<Curve = C>,
    {
        if seq.is_empty() || ranges.is_empty() {
            return Err(Error::EmptyInput);
        }
        let mut segments = Vec::with_capacity(ranges.len());
        let mut expected_start = 0usize;
        for &(lo, hi) in ranges {
            if lo != expected_start || hi < lo || hi >= seq.len() {
                return Err(Error::BadConfig(format!(
                    "ranges must partition the sequence; got ({lo}, {hi}) expecting start {expected_start}"
                )));
            }
            expected_start = hi + 1;
            let pts = &seq.points()[lo..=hi];
            let curve =
                if pts.len() == 1 { fitter.fit_singleton(pts[0])? } else { fitter.fit(pts)? };
            segments.push(Segment {
                start_index: lo,
                end_index: hi,
                start: pts[0],
                end: pts[pts.len() - 1],
                curve,
            });
        }
        if expected_start != seq.len() {
            return Err(Error::BadConfig(format!(
                "ranges cover {expected_start} of {} points",
                seq.len()
            )));
        }
        Ok(FunctionSeries { segments, original_len: seq.len() })
    }

    /// Rebuilds a series from already-fitted segments (deserialization
    /// path); validates the same partition invariants as
    /// [`FunctionSeries::build`] plus endpoint time ordering.
    pub fn from_segments(segments: Vec<Segment<C>>, original_len: usize) -> Result<Self> {
        if segments.is_empty() || original_len == 0 {
            return Err(Error::EmptyInput);
        }
        let mut expected_start = 0usize;
        for seg in &segments {
            if seg.start_index != expected_start || seg.end_index < seg.start_index {
                return Err(Error::BadConfig(format!(
                    "segments must partition the sequence; got [{}, {}] expecting start {expected_start}",
                    seg.start_index, seg.end_index
                )));
            }
            if seg.start.t > seg.end.t {
                return Err(Error::BadConfig("segment endpoints out of order".into()));
            }
            expected_start = seg.end_index + 1;
        }
        if expected_start != original_len {
            return Err(Error::BadConfig(format!(
                "segments cover {expected_start} of {original_len} points"
            )));
        }
        Ok(FunctionSeries { segments, original_len })
    }

    /// The segments, in time order.
    pub fn segments(&self) -> &[Segment<C>] {
        &self.segments
    }

    /// Number of segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Length of the represented raw sequence.
    pub fn original_len(&self) -> usize {
        self.original_len
    }

    /// Time span covered by the representation.
    pub fn span(&self) -> (f64, f64) {
        (self.segments[0].start.t, self.segments[self.segments.len() - 1].end.t)
    }

    /// Approximate value at time `t` — functions interpolate unsampled
    /// points (§3, characteristic 6). Between adjacent segments the two
    /// boundary points are linearly bridged; outside the span an error is
    /// returned.
    pub fn value_at(&self, t: f64) -> Result<f64> {
        let (lo, hi) = self.span();
        if t < lo || t > hi {
            return Err(Error::Sequence(saq_sequence::Error::OutOfRange { t, start: lo, end: hi }));
        }
        // Find the first segment whose end time >= t.
        let idx = self.segments.partition_point(|s| s.end.t < t);
        let seg = &self.segments[idx];
        if t >= seg.start.t {
            return Ok(seg.curve.eval(t));
        }
        // t falls in the gap between segments idx-1 and idx: bridge.
        let prev = &self.segments[idx - 1];
        let w = (t - prev.end.t) / (seg.start.t - prev.end.t);
        Ok(prev.end.v + w * (seg.start.v - prev.end.v))
    }

    /// Reconstructs an approximation of the original sequence at `n`
    /// uniformly spaced times across the span.
    pub fn reconstruct(&self, n: usize) -> Result<Sequence> {
        if n < 2 {
            return Err(Error::BadConfig("reconstruction needs n >= 2".into()));
        }
        let (lo, hi) = self.span();
        let dt = (hi - lo) / (n - 1) as f64;
        let mut points = Vec::with_capacity(n);
        for i in 0..n {
            let t = if i == n - 1 { hi } else { lo + i as f64 * dt };
            points.push(Point::new(t, self.value_at(t)?));
        }
        Ok(Sequence::new(points)?)
    }

    /// Compression accounting: each segment costs its function's parameters
    /// plus two breakpoint coordinates.
    pub fn compression(&self) -> CompressionReport {
        let parameters = self.segments.iter().map(|s| s.curve.parameter_count() + 2).sum();
        CompressionReport {
            original_points: self.original_len,
            segments: self.segments.len(),
            parameters,
        }
    }

    /// Per-segment representative slopes.
    pub fn slopes(&self) -> Vec<f64> {
        self.segments.iter().map(Segment::slope).collect()
    }

    /// Maximum absolute deviation between the representation and the raw
    /// sequence it was built from (must be the same sequence).
    pub fn max_deviation_from(&self, seq: &Sequence) -> f64 {
        let mut worst = 0.0f64;
        for seg in &self.segments {
            for p in &seq.points()[seg.start_index..=seg.end_index] {
                worst = worst.max((seg.curve.eval(p.t) - p.v).abs());
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saq_curves::{EndpointInterpolator, RegressionFitter};

    fn seq(vals: &[f64]) -> Sequence {
        Sequence::from_samples(vals).unwrap()
    }

    #[test]
    fn build_validates_partition() {
        let s = seq(&[0.0, 1.0, 2.0, 3.0]);
        // Gap.
        assert!(FunctionSeries::build(&s, &[(0, 1), (3, 3)], &RegressionFitter).is_err());
        // Overlap.
        assert!(FunctionSeries::build(&s, &[(0, 2), (2, 3)], &RegressionFitter).is_err());
        // Missing tail.
        assert!(FunctionSeries::build(&s, &[(0, 1)], &RegressionFitter).is_err());
        // Out of bounds.
        assert!(FunctionSeries::build(&s, &[(0, 9)], &RegressionFitter).is_err());
        // Correct.
        assert!(FunctionSeries::build(&s, &[(0, 1), (2, 3)], &RegressionFitter).is_ok());
        // Empty.
        assert!(FunctionSeries::build(&s, &[], &RegressionFitter).is_err());
    }

    #[test]
    fn exact_on_piecewise_linear_data() {
        // Tent: up over [0..5], down over [5..10].
        let vals: Vec<f64> =
            (0..=10).map(|i| if i <= 5 { i as f64 } else { 10.0 - i as f64 }).collect();
        let s = seq(&vals);
        let fs = FunctionSeries::build(&s, &[(0, 5), (6, 10)], &EndpointInterpolator).unwrap();
        assert_eq!(fs.segment_count(), 2);
        assert!(fs.max_deviation_from(&s) < 1e-12);
        assert_eq!(fs.slopes().len(), 2);
        assert!(fs.slopes()[0] > 0.0 && fs.slopes()[1] < 0.0);
    }

    #[test]
    fn value_at_inside_segment_and_bridge() {
        let vals: Vec<f64> =
            (0..=10).map(|i| if i <= 5 { i as f64 } else { 10.0 - i as f64 }).collect();
        let s = seq(&vals);
        let fs = FunctionSeries::build(&s, &[(0, 5), (6, 10)], &EndpointInterpolator).unwrap();
        assert!((fs.value_at(2.5).unwrap() - 2.5).abs() < 1e-12);
        // Bridge between t=5 (end of seg 0, v=5) and t=6 (start of seg 1, v=4).
        assert!((fs.value_at(5.5).unwrap() - 4.5).abs() < 1e-12);
        assert!(fs.value_at(-1.0).is_err());
        assert!(fs.value_at(11.0).is_err());
    }

    #[test]
    fn reconstruction_tracks_original() {
        let vals: Vec<f64> = (0..60).map(|i| (i as f64 * 0.2).sin() * 5.0).collect();
        let s = seq(&vals);
        // Break by hand every 10 points.
        let ranges: Vec<(usize, usize)> = (0..6).map(|k| (k * 10, (k * 10 + 9).min(59))).collect();
        let fs = FunctionSeries::build(&s, &ranges, &RegressionFitter).unwrap();
        let rec = fs.reconstruct(60).unwrap();
        assert_eq!(rec.len(), 60);
        // Coarse linear representation: generous bound.
        let dev = fs.max_deviation_from(&s);
        assert!(dev < 2.5, "dev {dev}");
    }

    #[test]
    fn compression_accounting() {
        let s = seq(&(0..500).map(|i| i as f64).collect::<Vec<_>>());
        let ranges: Vec<(usize, usize)> = (0..10).map(|k| (k * 50, k * 50 + 49)).collect();
        let fs = FunctionSeries::build(&s, &ranges, &EndpointInterpolator).unwrap();
        let report = fs.compression();
        assert_eq!(report.original_points, 500);
        assert_eq!(report.segments, 10);
        // 10 segments * (2 line params + 2 breakpoints) = 40.
        assert_eq!(report.parameters, 40);
        assert!((report.ratio() - 12.5).abs() < 1e-12);
    }

    #[test]
    fn singleton_segment_allowed() {
        let s = seq(&[1.0, 9.0, 1.0]);
        let fs = FunctionSeries::build(&s, &[(0, 0), (1, 1), (2, 2)], &RegressionFitter).unwrap();
        assert_eq!(fs.segment_count(), 3);
        assert_eq!(fs.segments()[1].len(), 1);
        assert!((fs.value_at(1.0).unwrap() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn span_and_segment_metadata() {
        let s = Sequence::from_values(100.0, 2.0, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        let fs = FunctionSeries::build(&s, &[(0, 3)], &EndpointInterpolator).unwrap();
        assert_eq!(fs.span(), (100.0, 106.0));
        let seg = &fs.segments()[0];
        assert_eq!(seg.len(), 4);
        assert_eq!(seg.span(), (100.0, 106.0));
        assert!(!seg.is_empty());
        assert_eq!(fs.original_len(), 4);
    }
}
