//! A composable query algebra over sequence representations, with a
//! planner that pushes indexable leaves into the `saq-index` structures.
//!
//! The paper's generalized approximate queries ([`QuerySpec`]) each name a
//! single feature dimension. Real workloads compose them: *"goal-post
//! shaped **and** inter-peak interval 8 ± 2, but **not** in the January
//! batch, give me the 10 closest"*. This module turns the closed
//! [`QuerySpec`] enum into leaves of an expression tree:
//!
//! * [`QueryExpr`] — the algebra: [`Pred`] leaves (feature specs, value
//!   bands, id ranges) combined with `And` / `Or` / `Not` / `Limit` /
//!   `TopK`.
//! * [`Planner`] — normalizes an expression, chooses an [`AccessPath`] per
//!   leaf (pattern index, inverted interval file, id filter, or scan) and
//!   emits a [`PhysicalPlan`]. Given a [`PlanStats`] snapshot of the
//!   backend's index statistics ([`Planner::with_stats`]), it annotates
//!   leaves with cardinality estimates and orders conjunctions by them —
//!   most selective first within each access-path cost class — and serves
//!   `Or`s of index-grade operands as index unions.
//! * [`execute_plan`] — the one executor shared by every engine; data
//!   access is abstracted behind [`LeafSource`], so the sequential store
//!   engine, the sequential archive engine, and the sharded batch engine
//!   all produce **id-identical** outcomes by construction.
//! * [`QueryEngine`] — the trait the engines implement;
//!   [`QueryEngine::evaluate`] keeps the old one-spec-at-a-time API alive
//!   by lowering to a single-leaf expression.
//!
//! ## Semantics
//!
//! Every subexpression evaluates to a [`MatchSet`]: per sequence id, a
//! [`MatchTier`] holding a deviation and an exact/approximate flag.
//! Combination follows §2.2's per-dimension metrics (and the conjunctive
//! query language of [`crate::lang`]):
//!
//! * `And` — a sequence matches iff it matches every operand; deviations
//!   **add** across dimensions, and the result is exact iff every operand
//!   is exact.
//! * `Or` — a sequence matches iff it matches any operand; an exact match
//!   in any operand wins, otherwise the **smallest** deviation is kept.
//! * `Not` — exactly the sequences (of the candidate universe) that do
//!   not match the operand at all; approximate matches of the operand
//!   count as matches, so they are excluded too.
//! * `Limit(n)` — the first `n` results in canonical result order (exact
//!   ids ascending, then approximate by `(deviation, id)`).
//! * `TopK(k)` — the `k` results with the smallest deviations (exact
//!   matches rank as deviation 0).
//!
//! `Limit` and `TopK` are **pipeline breakers**: their operand is always
//! evaluated against the full universe (never against an enclosing
//! conjunction's narrowed candidates), so their meaning is independent of
//! the access paths the planner picks.
//!
//! ## Example
//!
//! ```
//! use saq_core::algebra::{QueryEngine, QueryExpr, StoreEngine};
//! use saq_core::store::{SequenceStore, StoreConfig};
//! use saq_sequence::generators::{goalpost, peaks, GoalpostSpec, PeaksSpec};
//!
//! let mut store = SequenceStore::new(StoreConfig::default()).unwrap();
//! let fever = store.insert(&goalpost(GoalpostSpec::default())).unwrap();
//! let single = store
//!     .insert(&peaks(PeaksSpec { centers: vec![12.0], ..PeaksSpec::default() }))
//!     .unwrap();
//!
//! // Goal-post shape AND an inter-peak interval near 10 hours.
//! let expr = QueryExpr::shape("0* 1+ (-1)+ 0* 1+ (-1)+ 0*")
//!     .and(QueryExpr::peak_interval(10, 2));
//! let (outcome, stats) = StoreEngine::new(&store).execute_with_stats(&expr).unwrap();
//! assert_eq!(outcome.exact, vec![fever]);
//! assert!(!outcome.all_ids().contains(&single));
//! // Both leaves were served by indexes: no stored entry was scanned.
//! assert_eq!(stats.entries_scanned, 0);
//! ```

use crate::error::{Error, Result};
use crate::query::{
    sort_approximate_matches, ApproximateMatch, PreparedQuery, QueryOutcome, QuerySpec,
    SequenceMatch,
};
use crate::request::{QueryRequest, QueryResponse, SnapshotRef};
use crate::store::{SequenceStore, StoreSnapshot, StoredEntry};
use saq_sequence::Sequence;
use std::collections::BTreeMap;
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// Predicates (leaves)
// ---------------------------------------------------------------------------

/// A leaf predicate of the algebra: one per-sequence test.
#[derive(Debug, Clone, PartialEq)]
pub enum Pred {
    /// A generalized approximate feature query (shape, peak count, peak
    /// interval, steepness) with the semantics of
    /// [`crate::query::PreparedQuery::matches`].
    Feature(QuerySpec),
    /// The value-based comparator (the paper's Fig. 1): a stored sequence
    /// matches exactly when every sample lies within the ±`delta` envelope
    /// of `query`, and approximately when it lies within
    /// ±`delta`·(1 + `slack`); the deviation is `distance − delta`. Length
    /// mismatches never match, and neither do entries whose raw samples
    /// were not retained (`keep_raw: false`).
    ValueBand {
        /// The envelope's center sequence.
        query: Sequence,
        /// Envelope half-width δ (finite, ≥ 0).
        delta: f64,
        /// Fractional widening of the approximate tier (finite, ≥ 0).
        slack: f64,
    },
    /// An inclusive id range `lo..=hi` — the provenance/partition leaf.
    /// Never touches a stored entry, so it is always index-grade.
    IdRange {
        /// Smallest matching id.
        lo: u64,
        /// Largest matching id.
        hi: u64,
    },
}

/// A [`Pred`] validated and compiled for repeated per-sequence evaluation
/// (shape patterns are parsed and compiled to a DFA once).
#[derive(Debug, Clone)]
pub struct PreparedPred {
    pred: Pred,
    feature: Option<PreparedQuery>,
    /// Shape leaves only: the pattern parsed once, compiled once. The
    /// regex drives the pattern index's pruned full scan, the DFA both
    /// the index's candidate-restricted path and the scan path.
    shape: Option<(saq_pattern::Regex, saq_pattern::Dfa)>,
}

impl PreparedPred {
    /// Validates and compiles a predicate. Fails on unparsable patterns,
    /// non-finite or negative band parameters, empty band queries, and
    /// inverted id ranges.
    pub fn new(pred: &Pred) -> Result<PreparedPred> {
        let (feature, shape) = match pred {
            Pred::Feature(QuerySpec::Shape { pattern }) => {
                let regex = crate::alphabet::parse_slope_pattern(pattern)?;
                let dfa = regex.compile();
                (None, Some((regex, dfa)))
            }
            Pred::Feature(spec) => (Some(PreparedQuery::new(spec)?), None),
            Pred::ValueBand { query, delta, slack } => {
                if !(delta.is_finite() && *delta >= 0.0) {
                    return Err(Error::BadConfig("band delta must be finite and >= 0".into()));
                }
                if !(slack.is_finite() && *slack >= 0.0) {
                    return Err(Error::BadConfig("band slack must be finite and >= 0".into()));
                }
                if query.is_empty() {
                    return Err(Error::EmptyInput);
                }
                (None, None)
            }
            Pred::IdRange { lo, hi } => {
                if lo > hi {
                    return Err(Error::BadConfig(format!("inverted id range {lo}..={hi}")));
                }
                (None, None)
            }
        };
        Ok(PreparedPred { pred: pred.clone(), feature, shape })
    }

    /// The underlying predicate.
    pub fn pred(&self) -> &Pred {
        &self.pred
    }

    /// Whether evaluating this predicate requires the stored entry
    /// (`false` for [`Pred::IdRange`], which tests the id alone).
    pub fn needs_entry(&self) -> bool {
        !matches!(self.pred, Pred::IdRange { .. })
    }

    /// Evaluates one sequence. `entry` may be `None` only when
    /// [`PreparedPred::needs_entry`] is false.
    ///
    /// # Panics
    /// Panics if the predicate needs an entry and none is supplied.
    pub fn matches(&self, id: u64, entry: Option<&StoredEntry>) -> Option<SequenceMatch> {
        match &self.pred {
            Pred::Feature(QuerySpec::Shape { .. }) => {
                let entry = entry.expect("shape predicate needs a stored entry");
                let (_, dfa) = self.shape.as_ref().expect("prepared shape leaf holds a DFA");
                dfa.is_match(&entry.symbols).then_some(SequenceMatch::Exact)
            }
            Pred::Feature(_) => {
                let entry = entry.expect("feature predicate needs a stored entry");
                self.feature.as_ref().expect("prepared feature query").matches(entry)
            }
            Pred::ValueBand { query, delta, slack } => {
                let entry = entry.expect("band predicate needs a stored entry");
                let raw = entry.raw.as_ref()?;
                let distance = query.linf_distance(raw)?;
                if distance <= *delta {
                    Some(SequenceMatch::Exact)
                } else if distance <= *delta * (1.0 + *slack) {
                    Some(SequenceMatch::Approximate(distance - *delta))
                } else {
                    None
                }
            }
            Pred::IdRange { lo, hi } => (*lo..=*hi).contains(&id).then_some(SequenceMatch::Exact),
        }
    }

    /// The compiled slope-pattern regex of a shape leaf, if any. Backends
    /// that keep their own pattern indexes (the store engine, the sharded
    /// engine's shard-local indexes) drive pruned index scans with it.
    pub fn regex(&self) -> Option<&saq_pattern::Regex> {
        self.shape.as_ref().map(|(regex, _)| regex)
    }

    /// The compiled DFA of a shape leaf, if any.
    pub fn dfa(&self) -> Option<&saq_pattern::Dfa> {
        self.shape.as_ref().map(|(_, dfa)| dfa)
    }
}

// ---------------------------------------------------------------------------
// The algebra
// ---------------------------------------------------------------------------

/// A composable query expression: [`Pred`] leaves under `And` / `Or` /
/// `Not` / `Limit` / `TopK` nodes. Build leaves with the constructors
/// ([`QueryExpr::shape`], [`QueryExpr::peak_count`], …) and combine them
/// with the chaining methods:
///
/// ```
/// use saq_core::algebra::QueryExpr;
///
/// let expr = QueryExpr::peak_count(2, 1)
///     .and(QueryExpr::peak_interval(8, 2))
///     .and(QueryExpr::id_range(0, 999).negate())
///     .top_k(10);
/// assert_eq!(format!("{expr:?}").is_empty(), false);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum QueryExpr {
    /// A leaf predicate.
    Leaf(Pred),
    /// Conjunction: all operands must match; deviations add.
    And(Vec<QueryExpr>),
    /// Disjunction: any operand may match; the best tier wins.
    Or(Vec<QueryExpr>),
    /// Complement within the candidate universe.
    Not(Box<QueryExpr>),
    /// First `n` results in canonical result order.
    Limit(Box<QueryExpr>, usize),
    /// `k` results with the smallest deviations (exact = 0).
    TopK(Box<QueryExpr>, usize),
}

impl QueryExpr {
    /// A feature-query leaf.
    pub fn feature(spec: QuerySpec) -> QueryExpr {
        QueryExpr::Leaf(Pred::Feature(spec))
    }

    /// A shape leaf: the whole slope string must match `pattern` (either
    /// `u/d/f` or the paper's `1/-1/0` notation).
    pub fn shape(pattern: impl Into<String>) -> QueryExpr {
        QueryExpr::feature(QuerySpec::Shape { pattern: pattern.into() })
    }

    /// A peak-count leaf (`count` peaks ± `tolerance`).
    pub fn peak_count(count: usize, tolerance: usize) -> QueryExpr {
        QueryExpr::feature(QuerySpec::PeakCount { count, tolerance })
    }

    /// An inter-peak-interval leaf (`interval` ± `epsilon`).
    pub fn peak_interval(interval: i64, epsilon: i64) -> QueryExpr {
        QueryExpr::feature(QuerySpec::PeakInterval { interval, epsilon })
    }

    /// A universal steepness leaf: every peak's flanks at least this steep.
    pub fn min_steepness(steepness: f64, slack: f64) -> QueryExpr {
        QueryExpr::feature(QuerySpec::MinPeakSteepness { steepness, slack })
    }

    /// An existential steepness leaf: some peak's flanks at least this steep.
    pub fn has_steep_peak(steepness: f64, slack: f64) -> QueryExpr {
        QueryExpr::feature(QuerySpec::HasSteepPeak { steepness, slack })
    }

    /// A value-band leaf (Fig. 1 semantics with an approximate tier).
    pub fn value_band(query: Sequence, delta: f64, slack: f64) -> QueryExpr {
        QueryExpr::Leaf(Pred::ValueBand { query, delta, slack })
    }

    /// An inclusive id-range leaf.
    pub fn id_range(lo: u64, hi: u64) -> QueryExpr {
        QueryExpr::Leaf(Pred::IdRange { lo, hi })
    }

    /// Conjunction with another expression.
    pub fn and(self, other: QueryExpr) -> QueryExpr {
        match self {
            QueryExpr::And(mut children) => {
                children.push(other);
                QueryExpr::And(children)
            }
            first => QueryExpr::And(vec![first, other]),
        }
    }

    /// Disjunction with another expression.
    pub fn or(self, other: QueryExpr) -> QueryExpr {
        match self {
            QueryExpr::Or(mut children) => {
                children.push(other);
                QueryExpr::Or(children)
            }
            first => QueryExpr::Or(vec![first, other]),
        }
    }

    /// Complement of this expression (also available as `!expr`).
    pub fn negate(self) -> QueryExpr {
        QueryExpr::Not(Box::new(self))
    }

    /// Keeps the first `n` results in canonical result order.
    pub fn limit(self, n: usize) -> QueryExpr {
        QueryExpr::Limit(Box::new(self), n)
    }

    /// Keeps the `k` results with the smallest deviations.
    pub fn top_k(self, k: usize) -> QueryExpr {
        QueryExpr::TopK(Box::new(self), k)
    }
}

impl std::ops::Not for QueryExpr {
    type Output = QueryExpr;

    fn not(self) -> QueryExpr {
        self.negate()
    }
}

impl From<QuerySpec> for QueryExpr {
    /// Lowers a classic one-spec query to a single-leaf expression.
    fn from(spec: QuerySpec) -> QueryExpr {
        QueryExpr::feature(spec)
    }
}

// ---------------------------------------------------------------------------
// Match sets (the evaluation domain)
// ---------------------------------------------------------------------------

/// How one sequence matched a subexpression.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchTier {
    /// Accumulated deviation across feature dimensions (0 for exact).
    pub deviation: f64,
    /// Whether any contributing dimension was approximate.
    pub approximate: bool,
}

impl MatchTier {
    /// The exact tier (deviation 0).
    pub fn exact() -> MatchTier {
        MatchTier { deviation: 0.0, approximate: false }
    }

    /// Converts a per-sequence verdict.
    pub fn from_match(m: SequenceMatch) -> MatchTier {
        match m {
            SequenceMatch::Exact => MatchTier::exact(),
            SequenceMatch::Approximate(deviation) => MatchTier { deviation, approximate: true },
        }
    }
}

/// The value of a subexpression: matched ids with their tiers, id-sorted.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MatchSet {
    map: BTreeMap<u64, MatchTier>,
}

impl MatchSet {
    /// The empty set.
    pub fn new() -> MatchSet {
        MatchSet::default()
    }

    /// A set of exact matches.
    pub fn from_exact(ids: impl IntoIterator<Item = u64>) -> MatchSet {
        MatchSet { map: ids.into_iter().map(|id| (id, MatchTier::exact())).collect() }
    }

    /// Adds (or replaces) one id's tier.
    pub fn insert(&mut self, id: u64, tier: MatchTier) {
        self.map.insert(id, tier);
    }

    /// Number of matched ids.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether nothing matched.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The tier of one id, if it matched.
    pub fn get(&self, id: u64) -> Option<MatchTier> {
        self.map.get(&id).copied()
    }

    /// Matched ids, ascending.
    pub fn ids(&self) -> Vec<u64> {
        self.map.keys().copied().collect()
    }

    /// Iterates `(id, tier)` pairs in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, MatchTier)> + '_ {
        self.map.iter().map(|(&id, &tier)| (id, tier))
    }

    /// Conjunction: ids present in both; deviations add, approximate if
    /// either side is.
    pub fn and(self, other: &MatchSet) -> MatchSet {
        let map = self
            .map
            .into_iter()
            .filter_map(|(id, a)| {
                other.map.get(&id).map(|b| {
                    (
                        id,
                        MatchTier {
                            deviation: a.deviation + b.deviation,
                            approximate: a.approximate || b.approximate,
                        },
                    )
                })
            })
            .collect();
        MatchSet { map }
    }

    /// Disjunction: union of ids; an exact tier wins, otherwise the
    /// smaller deviation.
    pub fn or(mut self, other: MatchSet) -> MatchSet {
        for (id, b) in other.map {
            match self.map.entry(id) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(b);
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    let a = *e.get();
                    let best = if !a.approximate || !b.approximate {
                        MatchTier::exact()
                    } else {
                        MatchTier { deviation: a.deviation.min(b.deviation), approximate: true }
                    };
                    e.insert(best);
                }
            }
        }
        self
    }

    /// Complement: ids of `base` (sorted) absent from `self`, all exact.
    pub fn complement_within(&self, base: &[u64]) -> MatchSet {
        MatchSet::from_exact(base.iter().copied().filter(|id| !self.map.contains_key(id)))
    }

    /// Keeps only ids present in the sorted candidate list.
    pub fn restrict(mut self, candidates: &[u64]) -> MatchSet {
        self.map.retain(|id, _| candidates.binary_search(id).is_ok());
        self
    }

    /// The first `n` results in canonical order (exact ids ascending, then
    /// approximate by `(deviation, id)`).
    pub fn truncate_first(self, n: usize) -> MatchSet {
        let (exact, approx) = self.split_tiers();
        MatchSet { map: exact.into_iter().chain(approx).take(n).collect() }
    }

    /// The `k` entries with the smallest deviations; exact matches rank as
    /// deviation 0 and win ties, then smaller ids.
    pub fn truncate_top_k(self, k: usize) -> MatchSet {
        let mut all: Vec<(u64, MatchTier)> = self.map.into_iter().collect();
        all.sort_by(|a, b| {
            a.1.deviation
                .partial_cmp(&b.1.deviation)
                .expect("finite deviations")
                .then(a.1.approximate.cmp(&b.1.approximate))
                .then(a.0.cmp(&b.0))
        });
        MatchSet { map: all.into_iter().take(k).collect() }
    }

    /// Converts to the classic outcome: exact ids ascending, approximate
    /// matches by `(deviation, id)`.
    pub fn into_outcome(self) -> QueryOutcome {
        let (exact, approx) = self.split_tiers();
        let mut approximate: Vec<ApproximateMatch> = approx
            .into_iter()
            .map(|(id, tier)| ApproximateMatch { id, deviation: tier.deviation })
            .collect();
        sort_approximate_matches(&mut approximate);
        QueryOutcome { exact: exact.into_iter().map(|(id, _)| id).collect(), approximate }
    }

    /// Splits into (exact, approximate) lists — exact in id order,
    /// approximate sorted by `(deviation, id)`.
    #[allow(clippy::type_complexity)]
    fn split_tiers(self) -> (Vec<(u64, MatchTier)>, Vec<(u64, MatchTier)>) {
        let (approx, exact): (Vec<_>, Vec<_>) =
            self.map.into_iter().partition(|(_, tier)| tier.approximate);
        let mut approx = approx;
        approx.sort_by(|a, b| {
            a.1.deviation
                .partial_cmp(&b.1.deviation)
                .expect("finite deviations")
                .then(a.0.cmp(&b.0))
        });
        (exact, approx)
    }
}

// ---------------------------------------------------------------------------
// Planning
// ---------------------------------------------------------------------------

/// Which index structures an execution backend can serve leaves from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexCaps {
    /// The slope-pattern index (§4.4) is available for shape leaves.
    pub pattern: bool,
    /// The inverted interval file (Fig. 10) is available for
    /// peak-interval leaves.
    pub interval: bool,
}

impl IndexCaps {
    /// Every index available (the [`SequenceStore`] backends).
    pub fn all() -> IndexCaps {
        IndexCaps { pattern: true, interval: true }
    }

    /// No indexes (raw-archive backends): every entry leaf scans.
    pub fn none() -> IndexCaps {
        IndexCaps { pattern: false, interval: false }
    }
}

/// The access path the planner chose for one leaf.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPath {
    /// Serve a shape leaf from the slope-pattern index.
    PatternIndex,
    /// Serve a peak-interval leaf from the inverted interval file
    /// (B+tree range lookup; no entry is touched).
    IntervalIndex,
    /// Serve an id-range leaf by id arithmetic alone.
    IdFilter,
    /// Evaluate the predicate against every candidate entry.
    Scan,
}

impl AccessPath {
    fn label(self) -> &'static str {
        match self {
            AccessPath::PatternIndex => "pattern-index",
            AccessPath::IntervalIndex => "interval-index",
            AccessPath::IdFilter => "id-filter",
            AccessPath::Scan => "scan",
        }
    }
}

/// Statistics a backend hands the [`Planner`] so it can estimate leaf
/// cardinalities: the candidate universe, its id span, and a snapshot of
/// the backend's [`saq_index::IndexStats`] (posting-list sizes, per-symbol
/// prefix counts, interval and peak-count histograms). All estimates are
/// advisory — they steer conjunction evaluation order, never results.
#[derive(Debug, Clone, Default)]
pub struct PlanStats {
    /// Number of ids in the candidate universe.
    pub universe: u64,
    /// Smallest and largest id, when the universe is non-empty.
    pub id_span: Option<(u64, u64)>,
    /// Index statistics, when the backend maintains indexes.
    pub index: Option<saq_index::IndexStats>,
    /// Cardinalities observed by past executions, keyed by predicate
    /// shape ([`pred_shape_key`]). [`PlanStats::estimate_leaf`] consults
    /// this first, so a refined planner orders conjunctions by what
    /// execution actually saw instead of the static index estimates.
    pub observed: std::collections::BTreeMap<String, u64>,
}

/// The adaptive planner's key for one predicate: two leaves share a key
/// exactly when they test the same thing, so an observed cardinality
/// recorded for one applies to the other. Float parameters key by their
/// bit pattern; value-band centers by their sample count and endpoint
/// bits (cheap, and distinct centers of equal length are rare enough
/// that a collision only costs a misordered conjunction, never a wrong
/// result).
pub fn pred_shape_key(pred: &Pred) -> String {
    match pred {
        Pred::Feature(QuerySpec::Shape { pattern }) => format!("shape:{pattern}"),
        Pred::Feature(QuerySpec::PeakCount { count, tolerance }) => {
            format!("peaks:{count}:{tolerance}")
        }
        Pred::Feature(QuerySpec::PeakInterval { interval, epsilon }) => {
            format!("interval:{interval}:{epsilon}")
        }
        Pred::Feature(QuerySpec::MinPeakSteepness { steepness, slack }) => {
            format!("steep-all:{:016x}:{:016x}", steepness.to_bits(), slack.to_bits())
        }
        Pred::Feature(QuerySpec::HasSteepPeak { steepness, slack }) => {
            format!("steep-any:{:016x}:{:016x}", steepness.to_bits(), slack.to_bits())
        }
        Pred::ValueBand { query, delta, slack } => {
            let points = query.points();
            let (first, last) = match (points.first(), points.last()) {
                (Some(a), Some(b)) => (a.v.to_bits(), b.v.to_bits()),
                _ => (0, 0),
            };
            format!(
                "band:{}:{:016x}:{:016x}:{first:016x}:{last:016x}",
                points.len(),
                delta.to_bits(),
                slack.to_bits()
            )
        }
        Pred::IdRange { lo, hi } => format!("id:{lo}:{hi}"),
    }
}

impl PlanStats {
    /// Snapshots a [`SequenceStore`]'s statistics.
    pub fn from_store(store: &SequenceStore) -> PlanStats {
        let ids = store.ids();
        PlanStats {
            universe: ids.len() as u64,
            id_span: ids.first().copied().zip(ids.last().copied()),
            index: Some(store.index_stats()),
            observed: Default::default(),
        }
    }

    /// Statistics of a pinned [`StoreSnapshot`] — byte-identical for the
    /// lifetime of the snapshot no matter what the live store does.
    pub fn from_snapshot(snap: &StoreSnapshot) -> PlanStats {
        let ids = snap.ids();
        PlanStats {
            universe: ids.len() as u64,
            id_span: ids.first().copied().zip(ids.last().copied()),
            index: Some(snap.index_stats()),
            observed: Default::default(),
        }
    }

    /// Records one observed cardinality for a predicate shape. Future
    /// [`PlanStats::estimate_leaf`] calls for an identically shaped
    /// predicate return it instead of the static index estimate.
    pub fn observe(&mut self, pred: &Pred, count: u64) {
        self.observed.insert(pred_shape_key(pred), count);
    }

    /// Folds one execution's per-leaf observed cardinalities
    /// ([`ExecStats::observed`]) back into these statistics, keyed by
    /// predicate shape, overwriting the static estimates. Re-planning
    /// with the refined statistics is ordering-only: estimates steer
    /// conjunction evaluation order, never results. Returns how many
    /// leaves contributed an observation.
    pub fn refine(&mut self, stats: &ExecStats, plan: &PhysicalPlan) -> usize {
        let mut refined = 0;
        for leaf in plan.leaves() {
            let PlanNode::Leaf { ix, pred, .. } = leaf else { continue };
            if let Some(count) = stats.observed_for(*ix) {
                self.observe(pred.pred(), count);
                refined += 1;
            }
        }
        refined
    }

    /// Whether any evaluated leaf's observed cardinality diverges from
    /// its estimate by more than `factor` (both sides smoothed by +1, so
    /// a zero estimate against a handful of observed matches counts as
    /// divergence and vice versa). Leaves without estimates diverge when
    /// their observation differs from the pessimistic assumption (the
    /// whole universe) by the factor — an unestimated leaf that turns
    /// out highly selective is exactly the signal worth re-planning on.
    pub fn diverged(&self, stats: &ExecStats, plan: &PhysicalPlan, factor: f64) -> bool {
        plan.leaves().iter().any(|leaf| {
            let PlanNode::Leaf { ix, est, .. } = leaf else { return false };
            let Some(observed) = stats.observed_for(*ix) else { return false };
            let expected = est.unwrap_or(self.universe);
            let (hi, lo) = (expected.max(observed) + 1, expected.min(observed) + 1);
            hi as f64 > factor * lo as f64
        })
    }

    /// Estimated number of matching sequences for one leaf, `None` when no
    /// statistic covers the predicate (steepness and value-band leaves
    /// without a recorded observation).
    pub fn estimate_leaf(&self, pred: &PreparedPred) -> Option<u64> {
        if let Some(&observed) = self.observed.get(&pred_shape_key(pred.pred())) {
            return Some(observed);
        }
        match pred.pred() {
            Pred::IdRange { lo, hi } => {
                let (slo, shi) = self.id_span?;
                let (olo, ohi) = ((*lo).max(slo), (*hi).min(shi));
                if olo > ohi {
                    return Some(0);
                }
                // Assume ids spread uniformly over the span.
                let span = (shi - slo) as u128 + 1;
                let overlap = (ohi - olo) as u128 + 1;
                Some(((self.universe as u128 * overlap / span) as u64).min(self.universe))
            }
            Pred::Feature(QuerySpec::Shape { .. }) => {
                let stats = self.index.as_ref()?;
                Some(stats.pattern.estimate_full_matches(pred.regex()?.ast()))
            }
            Pred::Feature(QuerySpec::PeakInterval { interval, epsilon }) => {
                Some(self.index.as_ref()?.interval.estimate_matches(*interval, *epsilon))
            }
            Pred::Feature(QuerySpec::PeakCount { count, tolerance }) => {
                Some(self.index.as_ref()?.estimate_peak_count(*count, *tolerance))
            }
            _ => None,
        }
    }
}

/// One node of a [`PhysicalPlan`], mirroring the normalized expression.
#[derive(Debug, Clone)]
pub enum PlanNode {
    /// A leaf with its chosen access path. `ix` numbers leaves
    /// left-to-right across the whole plan.
    Leaf {
        /// Position of this leaf in [`PhysicalPlan::leaves`] order.
        ix: usize,
        /// The compiled predicate (boxed: leaves dominate plan trees and
        /// the compiled state is much larger than the structural nodes).
        pred: Box<PreparedPred>,
        /// The chosen access path.
        path: AccessPath,
        /// Estimated matching-sequence cardinality, when the planner had
        /// statistics covering this predicate.
        est: Option<u64>,
    },
    /// Conjunction. `children` keeps the normalized operand order (which
    /// fixes how deviations accumulate); `exec_order` is the planner's
    /// evaluation order — cheap access paths first, ties broken by
    /// estimated cardinality — so later operands evaluate over narrowed
    /// candidates.
    And {
        /// Operands in normalized order.
        children: Vec<PlanNode>,
        /// Indices into `children` in evaluation order.
        exec_order: Vec<usize>,
    },
    /// Disjunction (operands evaluate independently).
    Or(Vec<PlanNode>),
    /// Complement within the enclosing candidate universe.
    Not(Box<PlanNode>),
    /// Canonical-order truncation (pipeline breaker).
    Limit(Box<PlanNode>, usize),
    /// Deviation-ranked truncation (pipeline breaker).
    TopK(Box<PlanNode>, usize),
}

/// An executable plan: the normalized expression with per-leaf access
/// paths, conjunction evaluation order, and an optional id-bounds hint.
#[derive(Debug, Clone)]
pub struct PhysicalPlan {
    root: PlanNode,
    leaf_count: usize,
    id_bounds: Option<(u64, u64)>,
}

impl PhysicalPlan {
    /// The root node.
    pub fn root(&self) -> &PlanNode {
        &self.root
    }

    /// Number of leaves (leaf `ix` ranges over `0..leaf_count`).
    pub fn leaf_count(&self) -> usize {
        self.leaf_count
    }

    /// If `Some((lo, hi))`, every leaf may be evaluated over just the ids
    /// in `lo..=hi` without changing the outcome (derived from root-level
    /// conjunctive [`Pred::IdRange`] leaves; only emitted for plans free
    /// of `Limit`/`TopK`, whose operands must see the full universe).
    /// `lo > hi` means the result is provably empty.
    pub fn id_bounds(&self) -> Option<(u64, u64)> {
        self.id_bounds
    }

    /// The leaves in `ix` order.
    pub fn leaves(&self) -> Vec<&PlanNode> {
        fn collect<'p>(node: &'p PlanNode, out: &mut Vec<&'p PlanNode>) {
            match node {
                PlanNode::Leaf { .. } => out.push(node),
                PlanNode::And { children, .. } | PlanNode::Or(children) => {
                    children.iter().for_each(|c| collect(c, out));
                }
                PlanNode::Not(c) | PlanNode::Limit(c, _) | PlanNode::TopK(c, _) => {
                    collect(c, out);
                }
            }
        }
        let mut out = Vec::with_capacity(self.leaf_count);
        collect(&self.root, &mut out);
        out.sort_by_key(|n| match n {
            PlanNode::Leaf { ix, .. } => *ix,
            _ => unreachable!("collect only gathers leaves"),
        });
        out
    }

    /// A human-readable rendering of the plan tree.
    pub fn explain(&self) -> String {
        self.explain_with(None)
    }

    /// As [`PhysicalPlan::explain`], annotating each evaluated leaf's
    /// line with the cardinality execution actually observed:
    /// `~N (observed M)` (just `(observed M)` for leaves without an
    /// estimate). The REPL and `saqd` render explain through this after
    /// running the plan, so the estimate and reality sit side by side.
    pub fn explain_with(&self, observed: Option<&ExecStats>) -> String {
        fn describe(pred: &Pred) -> String {
            match pred {
                Pred::Feature(spec) => format!("{spec:?}"),
                Pred::ValueBand { delta, slack, .. } => {
                    format!("ValueBand {{ delta: {delta}, slack: {slack} }}")
                }
                Pred::IdRange { lo, hi } => format!("IdRange {lo}..={hi}"),
            }
        }
        fn go(node: &PlanNode, depth: usize, out: &mut String, observed: Option<&ExecStats>) {
            let pad = "  ".repeat(depth);
            match node {
                PlanNode::Leaf { ix, pred, path, est } => {
                    let seen = observed.and_then(|s| s.observed_for(*ix));
                    let est = match (est, seen) {
                        (Some(e), Some(m)) => format!(" ~{e} (observed {m})"),
                        (Some(e), None) => format!(" ~{e}"),
                        (None, Some(m)) => format!(" (observed {m})"),
                        (None, None) => String::new(),
                    };
                    let _ = writeln!(
                        out,
                        "{pad}#{ix} {} via {}{est}",
                        describe(pred.pred()),
                        path.label()
                    );
                }
                PlanNode::And { children, exec_order } => {
                    let _ = writeln!(out, "{pad}And (exec order {exec_order:?})");
                    children.iter().for_each(|c| go(c, depth + 1, out, observed));
                }
                PlanNode::Or(children) if children.iter().all(|c| cost_class(c) <= 1) => {
                    let _ = writeln!(out, "{pad}Or (index union)");
                    children.iter().for_each(|c| go(c, depth + 1, out, observed));
                }
                PlanNode::Or(children) => {
                    let _ = writeln!(out, "{pad}Or");
                    children.iter().for_each(|c| go(c, depth + 1, out, observed));
                }
                PlanNode::Not(c) => {
                    let _ = writeln!(out, "{pad}Not");
                    go(c, depth + 1, out, observed);
                }
                PlanNode::Limit(c, n) => {
                    let _ = writeln!(out, "{pad}Limit {n}");
                    go(c, depth + 1, out, observed);
                }
                PlanNode::TopK(c, k) => {
                    let _ = writeln!(out, "{pad}TopK {k}");
                    go(c, depth + 1, out, observed);
                }
            }
        }
        let mut out = String::new();
        if let Some((lo, hi)) = self.id_bounds {
            let _ = writeln!(out, "id bounds: {lo}..={hi}");
        }
        go(&self.root, 0, &mut out, observed);
        out
    }
}

/// Chooses access paths for a normalized [`QueryExpr`], producing a
/// [`PhysicalPlan`] for [`execute_plan`].
///
/// Conjunction evaluation order is cost-based: children are grouped by
/// access-path cost class (id filters, then index-served nodes — including
/// `Or`s whose operands are all index-grade, the *index-union* path — then
/// scans, then composites), and ordered **within** each class by the
/// cardinality estimates a [`PlanStats`] snapshot provides
/// ([`Planner::with_stats`]). Without statistics the planner falls back to
/// the static class order alone. Ordering never changes results — only how
/// fast candidate sets narrow.
///
/// ```
/// use saq_core::algebra::{IndexCaps, Planner, QueryExpr};
///
/// let expr = QueryExpr::shape("1+ (-1)+").and(QueryExpr::peak_count(1, 0));
/// let plan = Planner::new(IndexCaps::all()).plan(&expr).unwrap();
/// assert_eq!(plan.leaf_count(), 2);
/// assert!(plan.explain().contains("pattern-index"));
/// ```
#[derive(Debug, Clone)]
pub struct Planner {
    caps: IndexCaps,
    stats: Option<PlanStats>,
}

impl Planner {
    /// A statistics-free planner for a backend with the given index
    /// capabilities (conjunctions are ordered by access-path class only).
    pub fn new(caps: IndexCaps) -> Planner {
        Planner { caps, stats: None }
    }

    /// A planner with a statistics snapshot: leaves are annotated with
    /// cardinality estimates (shown as `~N` in
    /// [`PhysicalPlan::explain`]) and conjunctions are cost-ordered by
    /// them — most selective first within each access-path cost class.
    ///
    /// ```
    /// use saq_core::algebra::{IndexCaps, PlanStats, Planner, QueryExpr};
    /// use saq_core::store::SequenceStore;
    /// use saq_sequence::generators::{goalpost, GoalpostSpec};
    ///
    /// let mut store = SequenceStore::default();
    /// store.insert(&goalpost(GoalpostSpec::default())).unwrap();
    ///
    /// let planner = Planner::with_stats(IndexCaps::all(), PlanStats::from_store(&store));
    /// let expr = QueryExpr::peak_count(2, 0).and(QueryExpr::min_steepness(0.1, 0.0));
    /// let explain = planner.plan(&expr).unwrap().explain();
    /// // The peak-count leaf carries its histogram estimate (one goalpost).
    /// assert!(explain.contains("~1"), "{explain}");
    /// ```
    pub fn with_stats(caps: IndexCaps, stats: PlanStats) -> Planner {
        Planner { caps, stats: Some(stats) }
    }

    /// The capabilities this planner plans for.
    pub fn caps(&self) -> IndexCaps {
        self.caps
    }

    /// The statistics snapshot, if one was provided.
    pub fn stats(&self) -> Option<&PlanStats> {
        self.stats.as_ref()
    }

    /// Rewrites an expression into normal form: nested `And`/`Or` nodes
    /// are flattened (preserving operand order, so left-to-right deviation
    /// accumulation is unchanged) and single-operand `And`/`Or` unwrap.
    /// Double negation is **not** eliminated — `Not` flattens tiers (its
    /// result is all-exact), so `¬¬x` keeps `x`'s ids but deliberately
    /// forgets its deviations. Normalization is capability-independent, so
    /// every backend evaluates the same shape — which is what keeps
    /// accumulated deviations bit-identical across engines.
    pub fn normalize(expr: &QueryExpr) -> QueryExpr {
        match expr {
            QueryExpr::Leaf(p) => QueryExpr::Leaf(p.clone()),
            QueryExpr::And(children) => {
                let mut flat = Vec::with_capacity(children.len());
                for child in children {
                    match Planner::normalize(child) {
                        QueryExpr::And(inner) => flat.extend(inner),
                        other => flat.push(other),
                    }
                }
                if flat.len() == 1 {
                    flat.pop().expect("one element")
                } else {
                    QueryExpr::And(flat)
                }
            }
            QueryExpr::Or(children) => {
                let mut flat = Vec::with_capacity(children.len());
                for child in children {
                    match Planner::normalize(child) {
                        QueryExpr::Or(inner) => flat.extend(inner),
                        other => flat.push(other),
                    }
                }
                if flat.len() == 1 {
                    flat.pop().expect("one element")
                } else {
                    QueryExpr::Or(flat)
                }
            }
            QueryExpr::Not(child) => QueryExpr::Not(Box::new(Planner::normalize(child))),
            QueryExpr::Limit(child, n) => QueryExpr::Limit(Box::new(Planner::normalize(child)), *n),
            QueryExpr::TopK(child, k) => QueryExpr::TopK(Box::new(Planner::normalize(child)), *k),
        }
    }

    /// Normalizes, validates, compiles leaves, and assigns access paths.
    pub fn plan(&self, expr: &QueryExpr) -> Result<PhysicalPlan> {
        let norm = Planner::normalize(expr);
        let mut next_ix = 0;
        let root = self.plan_node(&norm, &mut next_ix)?;
        let id_bounds = if contains_pipeline_breaker(&norm) { None } else { root_id_bounds(&norm) };
        Ok(PhysicalPlan { root, leaf_count: next_ix, id_bounds })
    }

    fn plan_node(&self, expr: &QueryExpr, next_ix: &mut usize) -> Result<PlanNode> {
        match expr {
            QueryExpr::Leaf(pred) => {
                let prepared = PreparedPred::new(pred)?;
                let path = self.leaf_path(pred);
                let est = self.stats.as_ref().and_then(|s| s.estimate_leaf(&prepared));
                let ix = *next_ix;
                *next_ix += 1;
                Ok(PlanNode::Leaf { ix, pred: Box::new(prepared), path, est })
            }
            QueryExpr::And(children) => {
                if children.is_empty() {
                    return Err(Error::BadConfig("`And` needs at least one operand".into()));
                }
                let planned: Vec<PlanNode> =
                    children.iter().map(|c| self.plan_node(c, next_ix)).collect::<Result<_>>()?;
                let universe = self.stats.as_ref().map(|s| s.universe);
                let mut exec_order: Vec<usize> = (0..planned.len()).collect();
                // Cheap access paths first; within a class, the smallest
                // estimated result first (unknown estimates last), so every
                // later operand sees the tightest candidates we can prove.
                exec_order.sort_by_key(|&i| {
                    let node = &planned[i];
                    (cost_class(node), estimate_node(node, universe).unwrap_or(u64::MAX))
                });
                Ok(PlanNode::And { children: planned, exec_order })
            }
            QueryExpr::Or(children) => {
                if children.is_empty() {
                    return Err(Error::BadConfig("`Or` needs at least one operand".into()));
                }
                let planned =
                    children.iter().map(|c| self.plan_node(c, next_ix)).collect::<Result<_>>()?;
                Ok(PlanNode::Or(planned))
            }
            QueryExpr::Not(child) => Ok(PlanNode::Not(Box::new(self.plan_node(child, next_ix)?))),
            QueryExpr::Limit(child, n) => {
                Ok(PlanNode::Limit(Box::new(self.plan_node(child, next_ix)?), *n))
            }
            QueryExpr::TopK(child, k) => {
                Ok(PlanNode::TopK(Box::new(self.plan_node(child, next_ix)?), *k))
            }
        }
    }

    fn leaf_path(&self, pred: &Pred) -> AccessPath {
        match pred {
            Pred::IdRange { .. } => AccessPath::IdFilter,
            Pred::Feature(QuerySpec::Shape { .. }) if self.caps.pattern => AccessPath::PatternIndex,
            Pred::Feature(QuerySpec::PeakInterval { .. }) if self.caps.interval => {
                AccessPath::IntervalIndex
            }
            _ => AccessPath::Scan,
        }
    }
}

/// Evaluation cost class inside a conjunction: cheap access paths first so
/// the expensive ones see narrowed candidates. An `Or` whose operands are
/// all index-grade is itself index-grade — the *index-union* path: the
/// whole disjunction is answered by unioning index lookups, so it runs
/// with the index leaves instead of waiting (and instead of its operands
/// being evaluated over a wide candidate set).
fn cost_class(node: &PlanNode) -> usize {
    match node {
        PlanNode::Leaf { path: AccessPath::IdFilter, .. } => 0,
        PlanNode::Leaf { path: AccessPath::PatternIndex | AccessPath::IntervalIndex, .. } => 1,
        PlanNode::Or(children) if children.iter().all(|c| cost_class(c) <= 1) => 1,
        PlanNode::Leaf { path: AccessPath::Scan, .. } => 2,
        PlanNode::And { .. } | PlanNode::Or(_) => 3,
        PlanNode::Not(_) => 4,
        PlanNode::Limit(..) | PlanNode::TopK(..) => 5,
    }
}

/// Estimated result cardinality of a plan subtree, from the leaves'
/// statistics annotations: conjunctions take the tightest child bound,
/// disjunctions sum (capped by the universe), negations complement, and
/// the truncating nodes cap at `n`. `None` when nothing is known.
fn estimate_node(node: &PlanNode, universe: Option<u64>) -> Option<u64> {
    match node {
        PlanNode::Leaf { est, .. } => *est,
        PlanNode::And { children, .. } => {
            children.iter().filter_map(|c| estimate_node(c, universe)).min()
        }
        PlanNode::Or(children) => {
            let mut sum: u64 = 0;
            for child in children {
                sum = sum.saturating_add(estimate_node(child, universe)?);
            }
            Some(universe.map_or(sum, |u| sum.min(u)))
        }
        PlanNode::Not(child) => Some(universe?.saturating_sub(estimate_node(child, universe)?)),
        PlanNode::Limit(child, n) | PlanNode::TopK(child, n) => {
            Some(estimate_node(child, universe).map_or(*n as u64, |e| e.min(*n as u64)))
        }
    }
}

/// Whether the expression contains a conjunction with two or more
/// operands — the only shape whose plan changes under cardinality
/// estimates, and therefore the only one worth a statistics snapshot.
fn has_wide_and(expr: &QueryExpr) -> bool {
    match expr {
        QueryExpr::Leaf(_) => false,
        QueryExpr::And(children) => children.len() >= 2 || children.iter().any(has_wide_and),
        QueryExpr::Or(children) => children.iter().any(has_wide_and),
        QueryExpr::Not(c) | QueryExpr::Limit(c, _) | QueryExpr::TopK(c, _) => has_wide_and(c),
    }
}

fn contains_pipeline_breaker(expr: &QueryExpr) -> bool {
    match expr {
        QueryExpr::Leaf(_) => false,
        QueryExpr::And(cs) | QueryExpr::Or(cs) => cs.iter().any(contains_pipeline_breaker),
        QueryExpr::Not(c) => contains_pipeline_breaker(c),
        QueryExpr::Limit(..) | QueryExpr::TopK(..) => true,
    }
}

/// Intersection of the root-level conjunctive id-range leaves, if any.
fn root_id_bounds(norm: &QueryExpr) -> Option<(u64, u64)> {
    let conjuncts: &[QueryExpr] = match norm {
        QueryExpr::And(children) => children,
        leaf @ QueryExpr::Leaf(Pred::IdRange { .. }) => std::slice::from_ref(leaf),
        _ => return None,
    };
    let mut bounds: Option<(u64, u64)> = None;
    for c in conjuncts {
        if let QueryExpr::Leaf(Pred::IdRange { lo, hi }) = c {
            bounds = Some(match bounds {
                None => (*lo, *hi),
                Some((blo, bhi)) => ((*lo).max(blo), (*hi).min(bhi)),
            });
        }
    }
    bounds
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// Counters of one plan execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Size of the candidate universe the plan ran over.
    pub universe: u64,
    /// Number of (leaf, entry) predicate evaluations that touched a
    /// materialized entry — the "full-sequence scans" the planner's index
    /// pushdown exists to avoid.
    pub entries_scanned: u64,
    /// Leaf evaluations served by an index (pattern, interval, id filter).
    pub index_leaves: u64,
    /// Leaf evaluations that fell back to scanning entries.
    pub scan_leaves: u64,
    /// Per-leaf observed cardinalities, indexed by leaf `ix`: how many
    /// ids the leaf's [`MatchSet`] held (restricted to the candidates it
    /// was evaluated over). `None` for leaves a short-circuited
    /// conjunction never evaluated. Feeds [`PlanStats::refine`] and the
    /// `~N (observed M)` explain annotation.
    pub observed: Vec<Option<u64>>,
}

impl ExecStats {
    /// Records leaf `ix`'s observed cardinality (the last evaluation of a
    /// leaf wins), growing the vector on demand.
    pub fn record_observed(&mut self, ix: usize, count: u64) {
        if self.observed.len() <= ix {
            self.observed.resize(ix + 1, None);
        }
        self.observed[ix] = Some(count);
    }

    /// The observed cardinality of leaf `ix`, when it was evaluated.
    pub fn observed_for(&self, ix: usize) -> Option<u64> {
        self.observed.get(ix).copied().flatten()
    }
}

/// Data access abstraction behind [`execute_plan`]: a backend supplies the
/// candidate universe and evaluates single leaves, while the shared
/// executor owns all composition semantics.
pub trait LeafSource {
    /// The sorted id universe of this backend.
    fn universe(&mut self) -> Result<Vec<u64>>;

    /// Evaluates leaf `ix` over `candidates` (`None` = whole universe).
    /// Implementations must return a subset of the candidates.
    fn eval_leaf(
        &mut self,
        ix: usize,
        pred: &PreparedPred,
        path: AccessPath,
        candidates: Option<&[u64]>,
        stats: &mut ExecStats,
    ) -> Result<MatchSet>;
}

/// Executes a plan against a backend. This is the single composition
/// engine every backend shares: conjunctions narrow candidates in the
/// planner's `exec_order` but accumulate deviations in normalized operand
/// order, disjunctions union, negation complements within the enclosing
/// candidates, and `Limit`/`TopK` evaluate their operand unrestricted.
pub fn execute_plan<S: LeafSource>(
    plan: &PhysicalPlan,
    source: &mut S,
) -> Result<(QueryOutcome, ExecStats)> {
    let universe = source.universe()?;
    let mut stats = ExecStats {
        universe: universe.len() as u64,
        observed: vec![None; plan.leaf_count()],
        ..ExecStats::default()
    };
    let set = exec_node(plan.root(), source, &universe, None, &mut stats)?;
    Ok((set.into_outcome(), stats))
}

fn exec_node<S: LeafSource>(
    node: &PlanNode,
    source: &mut S,
    universe: &[u64],
    candidates: Option<&[u64]>,
    stats: &mut ExecStats,
) -> Result<MatchSet> {
    match node {
        PlanNode::Leaf { ix, pred, path, .. } => {
            let set = source.eval_leaf(*ix, pred, *path, candidates, stats)?;
            stats.record_observed(*ix, set.len() as u64);
            Ok(set)
        }
        PlanNode::And { children, exec_order } => {
            let mut results: Vec<Option<MatchSet>> = vec![None; children.len()];
            let mut narrowed: Option<Vec<u64>> = candidates.map(<[u64]>::to_vec);
            for &i in exec_order {
                let r = exec_node(&children[i], source, universe, narrowed.as_deref(), stats)?;
                let empty = r.is_empty();
                narrowed = Some(r.ids());
                results[i] = Some(r);
                if empty {
                    break;
                }
            }
            // A short-circuited conjunction is empty by definition.
            if results.iter().any(Option::is_none) {
                return Ok(MatchSet::new());
            }
            let mut it = results.into_iter().map(|r| r.expect("all children evaluated"));
            let first = it.next().expect("`And` has operands");
            Ok(it.fold(first, |acc, r| acc.and(&r)))
        }
        PlanNode::Or(children) => {
            let mut acc = MatchSet::new();
            for child in children {
                acc = acc.or(exec_node(child, source, universe, candidates, stats)?);
            }
            Ok(acc)
        }
        PlanNode::Not(child) => {
            let base = candidates.unwrap_or(universe);
            let matched = exec_node(child, source, universe, Some(base), stats)?;
            Ok(matched.complement_within(base))
        }
        PlanNode::Limit(child, n) => {
            let full = exec_node(child, source, universe, None, stats)?.truncate_first(*n);
            Ok(match candidates {
                Some(c) => full.restrict(c),
                None => full,
            })
        }
        PlanNode::TopK(child, k) => {
            let full = exec_node(child, source, universe, None, stats)?.truncate_top_k(*k);
            Ok(match candidates {
                Some(c) => full.restrict(c),
                None => full,
            })
        }
    }
}

// ---------------------------------------------------------------------------
// The engine trait
// ---------------------------------------------------------------------------

/// A query engine: executes composed [`QueryExpr`]s over some backing
/// store. Implemented by [`StoreEngine`] (sequential, index pushdown over
/// a [`SequenceStore`]), `saq_archive::ArchiveScanEngine` (sequential over
/// the raw archive), and `saq_engine::QueryEngine::bind` (sharded parallel
/// over the raw archive). All implementations return identical outcomes
/// for the same data, with one precondition: [`Pred::ValueBand`] leaves
/// need raw samples, and a [`SequenceStore`] built with `keep_raw: false`
/// retains none — its band leaves match nothing, while the archive-backed
/// engines (which always keep raw copies) still match. Keep raw retention
/// on (the default) wherever band leaves must agree across engines.
pub trait QueryEngine {
    /// Executes an expression, returning the outcome and execution
    /// counters.
    fn execute_with_stats(&self, expr: &QueryExpr) -> Result<(QueryOutcome, ExecStats)>;

    /// The unified entry point: answers one [`QueryRequest`] — SAQL text
    /// or a built expression, optionally pinned to a snapshot, with stats
    /// and explain on demand. Every engine (and the `saqd` server)
    /// answers through this method; the older per-shape entry points are
    /// deprecated shims over it.
    ///
    /// The default implementation composes [`QueryRequest::resolve`],
    /// [`QueryRequest::verify_pin`] against [`QueryEngine::snapshot_ref`],
    /// [`QueryEngine::explain`], and
    /// [`QueryEngine::execute_with_stats`]. Engines over *live* mutable
    /// backing override it to capture one snapshot up front so the pin
    /// check, the plan, and every leaf evaluation read the same
    /// generation.
    ///
    /// ```
    /// use saq_core::algebra::{QueryEngine as _, StoreEngine};
    /// use saq_core::request::QueryRequest;
    /// use saq_core::store::SequenceStore;
    /// use saq_sequence::generators::{goalpost, GoalpostSpec};
    ///
    /// let mut store = SequenceStore::default();
    /// let id = store.insert(&goalpost(GoalpostSpec::default())).unwrap();
    /// let resp = StoreEngine::new(&store)
    ///     .request(&QueryRequest::saql("peaks = 2 and interval = 10 tol 3").with_stats())
    ///     .unwrap();
    /// assert_eq!(resp.outcome.exact, vec![id]);
    /// assert!(resp.stats.unwrap().universe >= 1);
    /// ```
    fn request(&self, req: &QueryRequest) -> Result<QueryResponse> {
        let expr = req.resolve()?;
        let snapshot = self.snapshot_ref();
        req.verify_pin(snapshot)?;
        let explain = if req.want_explain { Some(self.explain(&expr)?) } else { None };
        let (outcome, stats) = self.execute_with_stats(&expr)?;
        Ok(QueryResponse { outcome, stats: req.want_stats.then_some(stats), explain, snapshot })
    }

    /// Renders the physical plan this engine would run for `expr` (the
    /// REPL's and the server's `explain:` output). The default plans with
    /// every index capability; engines with fewer capabilities override
    /// to show what they would actually do.
    fn explain(&self, expr: &QueryExpr) -> Result<String> {
        Ok(Planner::new(IndexCaps::all()).plan(expr)?.explain())
    }

    /// The `(instance, generation)` this engine currently serves, when it
    /// can name one. Engines over anonymous data return `None`, which
    /// rejects pinned requests.
    fn snapshot_ref(&self) -> Option<SnapshotRef> {
        None
    }

    /// Executes an expression.
    fn execute(&self, expr: &QueryExpr) -> Result<QueryOutcome> {
        Ok(self.execute_with_stats(expr)?.0)
    }

    /// Back-compat entry point: evaluates a classic single-spec query by
    /// lowering it to a single-leaf expression.
    #[deprecated(note = "use `request` with `QueryRequest::expr`")]
    fn evaluate(&self, spec: &QuerySpec) -> Result<QueryOutcome> {
        Ok(self.request(&QueryRequest::expr(QueryExpr::from(spec.clone())))?.outcome)
    }

    /// Parses a SAQL query ([`crate::lang::saql`]) and executes it; parse
    /// errors surface as [`Error::Saql`] with the caret diagnostic
    /// intact.
    #[deprecated(note = "use `request` with `QueryRequest::saql`")]
    fn execute_saql(&self, text: &str) -> Result<QueryOutcome> {
        Ok(self.request(&QueryRequest::saql(text))?.outcome)
    }

    /// As `execute_saql`, returning execution counters too.
    #[deprecated(note = "use `request` with `QueryRequest::saql(..).with_stats()`")]
    fn execute_saql_with_stats(&self, text: &str) -> Result<(QueryOutcome, ExecStats)> {
        let resp = self.request(&QueryRequest::saql(text).with_stats())?;
        Ok((resp.outcome, resp.stats.expect("stats were requested")))
    }
}

// ---------------------------------------------------------------------------
// The sequential store engine
// ---------------------------------------------------------------------------

/// The sequential, planner-backed engine over a [`SequenceStore`]: shape
/// leaves are served by the slope-pattern index, peak-interval leaves by
/// the inverted interval file (without touching any entry), id ranges by
/// id arithmetic, and only the remaining leaves scan entries — over
/// candidates narrowed by the leaves that ran before them.
///
/// ```
/// use saq_core::algebra::{QueryEngine, QueryExpr, StoreEngine};
/// use saq_core::store::SequenceStore;
/// use saq_sequence::generators::{goalpost, GoalpostSpec};
///
/// let mut store = SequenceStore::default();
/// let id = store.insert(&goalpost(GoalpostSpec::default())).unwrap();
/// let engine = StoreEngine::new(&store);
/// let outcome = engine.execute(&QueryExpr::peak_count(2, 0)).unwrap();
/// assert_eq!(outcome.exact, vec![id]);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct StoreEngine<'a> {
    store: &'a SequenceStore,
    caps: IndexCaps,
    use_stats: bool,
}

impl<'a> StoreEngine<'a> {
    /// An engine over `store` with every index capability enabled and
    /// statistics-driven planning: plans whose conjunctions have
    /// something to order are cost-ordered by a fresh snapshot of the
    /// store's cardinality estimates. The snapshot is taken lazily, per
    /// plan — single-leaf expressions (the classic
    /// [`QueryEngine::evaluate`] path) never pay for it.
    pub fn new(store: &'a SequenceStore) -> StoreEngine<'a> {
        StoreEngine { store, caps: IndexCaps::all(), use_stats: true }
    }

    /// A statistics-free engine with explicit capabilities — conjunctions
    /// keep the static class order, and [`IndexCaps::none`] forces every
    /// leaf onto the scan path (the baselines the pushdown and selectivity
    /// experiments compare against).
    pub fn with_caps(store: &'a SequenceStore, caps: IndexCaps) -> StoreEngine<'a> {
        StoreEngine { store, caps, use_stats: false }
    }

    /// Plans an expression with this engine's capabilities. Statistics
    /// are snapshotted (O(store size)) only when the expression contains
    /// a multi-operand conjunction — the one place estimates change the
    /// plan.
    pub fn plan(&self, expr: &QueryExpr) -> Result<PhysicalPlan> {
        self.planner_for(expr, &self.store.snapshot()).plan(expr)
    }

    fn planner_for(&self, expr: &QueryExpr, snap: &StoreSnapshot) -> Planner {
        if self.use_stats && has_wide_and(expr) {
            Planner::with_stats(self.caps, PlanStats::from_snapshot(snap))
        } else {
            Planner::new(self.caps)
        }
    }

    /// Executes a previously built plan (over a snapshot taken now).
    pub fn run_plan(&self, plan: &PhysicalPlan) -> Result<(QueryOutcome, ExecStats)> {
        let snap = self.store.snapshot();
        execute_plan(plan, &mut SnapshotSource { snap: &snap })
    }
}

impl QueryEngine for StoreEngine<'_> {
    /// Captures one [`StoreSnapshot`] up front; planner statistics and
    /// every leaf evaluation read that snapshot, so the whole run is
    /// pinned to a single `(instance, generation)`.
    fn execute_with_stats(&self, expr: &QueryExpr) -> Result<(QueryOutcome, ExecStats)> {
        let snap = self.store.snapshot();
        let plan = self.planner_for(expr, &snap).plan(expr)?;
        execute_plan(&plan, &mut SnapshotSource { snap: &snap })
    }

    /// One snapshot, captured before the pin check, serves planning,
    /// explain, and every leaf evaluation of the request.
    fn request(&self, req: &QueryRequest) -> Result<QueryResponse> {
        let snap = self.store.snapshot();
        let current = SnapshotRef::new(snap.instance_id(), snap.generation());
        req.verify_pin(Some(current))?;
        let expr = req.resolve()?;
        let plan = self.planner_for(&expr, &snap).plan(&expr)?;
        let (outcome, stats) = execute_plan(&plan, &mut SnapshotSource { snap: &snap })?;
        // Rendered after execution so each leaf carries what it observed.
        let explain = req.want_explain.then(|| plan.explain_with(Some(&stats)));
        Ok(QueryResponse {
            outcome,
            stats: req.want_stats.then_some(stats),
            explain,
            snapshot: Some(current),
        })
    }

    /// Explains with this engine's capabilities and statistics choice —
    /// exactly the plan [`StoreEngine::request`] would run.
    fn explain(&self, expr: &QueryExpr) -> Result<String> {
        Ok(self.plan(expr)?.explain())
    }

    fn snapshot_ref(&self) -> Option<SnapshotRef> {
        let snap = self.store.snapshot();
        Some(SnapshotRef::new(snap.instance_id(), snap.generation()))
    }
}

/// A pinned snapshot is itself a full engine: planning and leaf
/// evaluation both read the snapshot's generation, which makes it the
/// natural engine for concurrent readers — take a snapshot, query it any
/// number of times, drop it.
impl QueryEngine for StoreSnapshot {
    fn execute_with_stats(&self, expr: &QueryExpr) -> Result<(QueryOutcome, ExecStats)> {
        let planner = if has_wide_and(expr) {
            Planner::with_stats(IndexCaps::all(), PlanStats::from_snapshot(self))
        } else {
            Planner::new(IndexCaps::all())
        };
        let plan = planner.plan(expr)?;
        execute_plan(&plan, &mut SnapshotSource { snap: self })
    }

    /// Explains with the same statistics choice execution uses, so the
    /// rendering matches the plan that actually runs.
    fn explain(&self, expr: &QueryExpr) -> Result<String> {
        let planner = if has_wide_and(expr) {
            Planner::with_stats(IndexCaps::all(), PlanStats::from_snapshot(self))
        } else {
            Planner::new(IndexCaps::all())
        };
        Ok(planner.plan(expr)?.explain())
    }

    fn snapshot_ref(&self) -> Option<SnapshotRef> {
        Some(SnapshotRef::new(self.instance_id(), self.generation()))
    }
}

struct SnapshotSource<'a> {
    snap: &'a StoreSnapshot,
}

impl LeafSource for SnapshotSource<'_> {
    fn universe(&mut self) -> Result<Vec<u64>> {
        Ok(self.snap.ids())
    }

    fn eval_leaf(
        &mut self,
        _ix: usize,
        pred: &PreparedPred,
        path: AccessPath,
        candidates: Option<&[u64]>,
        stats: &mut ExecStats,
    ) -> Result<MatchSet> {
        match path {
            AccessPath::IdFilter => {
                stats.index_leaves += 1;
                let Pred::IdRange { lo, hi } = *pred.pred() else {
                    return Err(Error::BadConfig("id-filter path on a non-id-range leaf".into()));
                };
                let ids = match candidates {
                    Some(c) => c.to_vec(),
                    None => self.snap.ids(),
                };
                Ok(MatchSet::from_exact(ids.into_iter().filter(|id| (lo..=hi).contains(id))))
            }
            AccessPath::PatternIndex => {
                stats.index_leaves += 1;
                let dfa = pred.dfa().ok_or_else(|| {
                    Error::BadConfig("pattern-index path on a non-shape leaf".into())
                })?;
                let hits = match candidates {
                    Some(c) => self.snap.pattern_index().full_matches_among(dfa, c),
                    None => {
                        let regex = pred.regex().expect("shape leaf holds its regex");
                        let mut v = self.snap.pattern_index().full_matches(regex);
                        v.sort_unstable();
                        v
                    }
                };
                Ok(MatchSet::from_exact(hits))
            }
            AccessPath::IntervalIndex => {
                stats.index_leaves += 1;
                let Pred::Feature(QuerySpec::PeakInterval { interval, epsilon }) = *pred.pred()
                else {
                    return Err(Error::BadConfig(
                        "interval-index path on a non-interval leaf".into(),
                    ));
                };
                let set = interval_index_match_set(self.snap.interval_index(), interval, epsilon);
                Ok(match candidates {
                    Some(c) => set.restrict(c),
                    None => set,
                })
            }
            AccessPath::Scan => {
                stats.scan_leaves += 1;
                let ids = match candidates {
                    Some(c) => c.to_vec(),
                    None => self.snap.ids(),
                };
                let mut set = MatchSet::new();
                for id in ids {
                    let entry = self.snap.get(id)?;
                    stats.entries_scanned += 1;
                    if let Some(m) = pred.matches(id, Some(entry)) {
                        set.insert(id, MatchTier::from_match(m));
                    }
                }
                Ok(set)
            }
        }
    }
}

/// Serves a peak-interval leaf entirely from an inverted interval file:
/// postings arrive sorted by `(sequence, position)`, so the first posting
/// of a sequence is its first in-band interval, and any posting at the
/// exact key makes the match exact — precisely
/// [`crate::query::PreparedQuery::matches`]'s interval semantics, without
/// touching any stored entry. Shared by the store engine's
/// [`AccessPath::IntervalIndex`] path and the sharded engine's shard-local
/// indexes.
pub fn interval_index_match_set(
    index: &saq_index::InvertedIndex,
    interval: i64,
    epsilon: i64,
) -> MatchSet {
    let mut set = MatchSet::new();
    let mut current: Option<(u64, i64, bool)> = None;
    for (key, posting) in index.range_with_keys(interval, epsilon) {
        let dev = (key - interval).abs();
        match &mut current {
            Some((id, _, exact)) if *id == posting.sequence => {
                *exact |= dev == 0;
            }
            _ => {
                if let Some(done) = current.take() {
                    set.insert(done.0, interval_tier(done));
                }
                current = Some((posting.sequence, dev, dev == 0));
            }
        }
    }
    if let Some(done) = current.take() {
        set.insert(done.0, interval_tier(done));
    }
    set
}

/// Tier of one sequence's interval-index result: `(id, first in-band
/// deviation, any exact hit)`.
fn interval_tier((_, first_dev, exact): (u64, i64, bool)) -> MatchTier {
    if exact {
        MatchTier::exact()
    } else {
        MatchTier { deviation: first_dev as f64, approximate: true }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;
    use saq_sequence::generators::{goalpost, peaks, GoalpostSpec, PeaksSpec};

    /// One 1-peak, two 2-peak (goalpost), one 3-peak sequence.
    fn corpus() -> (SequenceStore, Vec<u64>) {
        let mut store = SequenceStore::new(StoreConfig::default()).unwrap();
        let mut ids = Vec::new();
        let one = peaks(PeaksSpec { centers: vec![12.0], ..PeaksSpec::default() });
        let two_a = goalpost(GoalpostSpec::default());
        let two_b = goalpost(GoalpostSpec { peak1: 6.0, peak2: 16.0, ..GoalpostSpec::default() });
        let three = peaks(PeaksSpec { centers: vec![4.0, 12.0, 20.0], ..PeaksSpec::default() });
        for s in [&one, &two_a, &two_b, &three] {
            ids.push(store.insert(s).unwrap());
        }
        (store, ids)
    }

    const GOALPOST: &str = "0* 1+ (-1)+ 0* 1+ (-1)+ 0*";

    #[test]
    fn refine_keys_observations_by_predicate_shape() {
        let (store, _) = corpus();
        let engine = StoreEngine::new(&store);
        // Observe each predicate on its own so the counts are over the
        // whole universe (inside a conjunction, later leaves see only
        // the survivors of earlier ones).
        let wide_plan = engine.plan(&QueryExpr::peak_count(2, 2)).unwrap();
        let (_, wide_exec) = engine.run_plan(&wide_plan).unwrap();
        let two_plan = engine.plan(&QueryExpr::peak_count(2, 0)).unwrap();
        let (_, two_exec) = engine.run_plan(&two_plan).unwrap();

        let mut stats = PlanStats::from_store(&store);
        assert_eq!(stats.refine(&wide_exec, &wide_plan), 1, "one observed leaf per plan");
        assert_eq!(stats.refine(&two_exec, &two_plan), 1, "one observed leaf per plan");

        // Observations key by shape: the exact predicates re-surface
        // their counts, a different tolerance is a different key.
        let wide = Pred::Feature(QuerySpec::PeakCount { count: 2, tolerance: 2 });
        let two = Pred::Feature(QuerySpec::PeakCount { count: 2, tolerance: 0 });
        let near_two = Pred::Feature(QuerySpec::PeakCount { count: 2, tolerance: 1 });
        assert_eq!(stats.observed.get(&pred_shape_key(&wide)), Some(&4));
        assert_eq!(stats.observed.get(&pred_shape_key(&two)), Some(&2));
        assert_eq!(stats.observed.get(&pred_shape_key(&near_two)), None);

        // Re-planning with the refined statistics is ordering-only and
        // runs the observed-selective leaf first — despite pessimal
        // declaration order and no index to consult.
        let expr = QueryExpr::peak_count(2, 2).and(QueryExpr::peak_count(2, 0));
        let replanned = Planner::with_stats(IndexCaps::none(), stats).plan(&expr).unwrap();
        match replanned.root() {
            PlanNode::And { exec_order, .. } => {
                assert_eq!(exec_order, &vec![1, 0], "exact count (2 observed) before wide (4)");
            }
            other => panic!("expected And root, got {other:?}"),
        }
        let (base, _) = engine.run_plan(&engine.plan(&expr).unwrap()).unwrap();
        let (reordered, _) = engine.run_plan(&replanned).unwrap();
        assert_eq!(base, reordered, "refined ordering must not change results");
    }

    #[test]
    fn divergence_compares_observations_against_estimates() {
        let (store, _) = corpus();
        let stats = PlanStats::from_store(&store);
        // A scan leaf carries no estimate, so the pessimistic assumption
        // is the whole universe (4).
        let plan =
            Planner::new(IndexCaps::none()).plan(&QueryExpr::min_steepness(0.0, 0.5)).unwrap();
        let mut exec = ExecStats::default();
        exec.record_observed(0, 0);
        assert!(stats.diverged(&exec, &plan, 2.0), "0 observed vs universe 4 diverges at 2x");
        let mut exec = ExecStats::default();
        exec.record_observed(0, 3);
        assert!(!stats.diverged(&exec, &plan, 2.0), "3 observed vs universe 4 is within 2x");
        // A leaf that was never evaluated (short-circuited) is no signal.
        assert!(!stats.diverged(&ExecStats::default(), &plan, 2.0));
    }

    #[test]
    fn normalize_flattens_but_keeps_double_negation() {
        let expr = QueryExpr::peak_count(1, 0)
            .and(QueryExpr::peak_count(2, 0).and(QueryExpr::peak_count(3, 0)))
            .and(QueryExpr::peak_count(4, 0).negate().negate());
        let norm = Planner::normalize(&expr);
        match norm {
            QueryExpr::And(children) => {
                assert_eq!(children.len(), 4);
                assert_eq!(
                    children.iter().filter(|c| matches!(c, QueryExpr::Leaf(_))).count(),
                    3,
                    "the double negation must survive (`Not` flattens tiers): {children:?}"
                );
                assert!(
                    matches!(&children[3], QueryExpr::Not(inner) if matches!(**inner, QueryExpr::Not(_)))
                );
            }
            other => panic!("expected flat And, got {other:?}"),
        }
        // Single-operand composites unwrap.
        let single = Planner::normalize(&QueryExpr::And(vec![QueryExpr::peak_count(1, 0)]));
        assert!(matches!(single, QueryExpr::Leaf(_)));
    }

    #[test]
    fn double_negation_keeps_ids_but_flattens_tiers() {
        let (store, ids) = corpus();
        let expr = QueryExpr::peak_count(2, 1);
        let plain = StoreEngine::new(&store).execute(&expr.clone()).unwrap();
        let double = StoreEngine::new(&store).execute(&expr.negate().negate()).unwrap();
        assert_eq!(double.exact, ids, "¬¬x keeps x's ids, all exact");
        assert!(double.approximate.is_empty());
        assert!(!plain.approximate.is_empty(), "x itself has approximate tiers");
    }

    #[test]
    fn planner_assigns_paths_by_capability() {
        let expr = QueryExpr::shape(GOALPOST)
            .and(QueryExpr::peak_interval(8, 2))
            .and(QueryExpr::peak_count(2, 0))
            .and(QueryExpr::id_range(0, 10));
        let indexed = Planner::new(IndexCaps::all()).plan(&expr).unwrap();
        let explain = indexed.explain();
        assert!(explain.contains("pattern-index"), "{explain}");
        assert!(explain.contains("interval-index"), "{explain}");
        assert!(explain.contains("id-filter"), "{explain}");
        assert!(explain.contains("via scan"), "{explain}");
        assert_eq!(indexed.leaf_count(), 4);
        assert_eq!(indexed.id_bounds(), Some((0, 10)));

        let scanned = Planner::new(IndexCaps::none()).plan(&expr).unwrap();
        assert!(!scanned.explain().contains("pattern-index"));
        assert!(!scanned.explain().contains("interval-index"));
        // Id filters stay index-grade even without indexes.
        assert!(scanned.explain().contains("id-filter"));
    }

    #[test]
    fn exec_order_puts_indexes_before_scans() {
        let expr = QueryExpr::peak_count(2, 0)
            .and(QueryExpr::shape(GOALPOST))
            .and(QueryExpr::id_range(0, 100));
        let plan = Planner::new(IndexCaps::all()).plan(&expr).unwrap();
        match plan.root() {
            PlanNode::And { exec_order, .. } => {
                // id filter (leaf 2) first, pattern index (leaf 1) next,
                // the scan leaf (leaf 0) last.
                assert_eq!(exec_order, &vec![2, 1, 0]);
            }
            other => panic!("expected And root, got {other:?}"),
        }
    }

    #[test]
    fn stats_order_scan_leaves_by_estimated_selectivity() {
        // A skewed ward: many single-peak logs, few goalposts.
        let mut store = SequenceStore::new(StoreConfig::default()).unwrap();
        for i in 0..12u64 {
            let seq = if i % 6 == 0 {
                goalpost(GoalpostSpec { seed: i, ..GoalpostSpec::default() })
            } else {
                peaks(PeaksSpec { centers: vec![12.0], seed: i, ..PeaksSpec::default() })
            };
            store.insert(&seq).unwrap();
        }
        // Declaration order is pessimal: the unselective steepness leaf
        // (no statistics) first, the selective peak-count leaf second.
        let expr = QueryExpr::min_steepness(0.05, 0.0).and(QueryExpr::peak_count(2, 0));

        let stat_free = Planner::new(IndexCaps::all()).plan(&expr).unwrap();
        match stat_free.root() {
            PlanNode::And { exec_order, .. } => assert_eq!(exec_order, &vec![0, 1]),
            other => panic!("expected And root, got {other:?}"),
        }

        let engine = StoreEngine::new(&store);
        let informed = engine.plan(&expr).unwrap();
        match informed.root() {
            PlanNode::And { children, exec_order } => {
                assert_eq!(exec_order, &vec![1, 0], "peak-count estimate flips the order");
                match &children[1] {
                    PlanNode::Leaf { est, .. } => assert_eq!(*est, Some(2)),
                    other => panic!("expected leaf, got {other:?}"),
                }
            }
            other => panic!("expected And root, got {other:?}"),
        }
        assert!(informed.explain().contains("via scan ~2"), "{}", informed.explain());

        // The flipped order scans fewer entries and returns the same ids.
        let (cost_out, cost_stats) = engine.execute_with_stats(&expr).unwrap();
        let (static_out, static_stats) =
            StoreEngine::with_caps(&store, IndexCaps::all()).execute_with_stats(&expr).unwrap();
        assert_eq!(cost_out, static_out);
        assert!(
            cost_stats.entries_scanned < static_stats.entries_scanned,
            "cost {cost_stats:?} vs static {static_stats:?}"
        );
    }

    #[test]
    fn leaf_estimates_cover_every_statistic() {
        let (store, ids) = corpus();
        let stats = PlanStats::from_store(&store);
        let est = |expr: &QueryExpr| {
            let QueryExpr::Leaf(pred) = expr else { panic!("leaf expected") };
            stats.estimate_leaf(&PreparedPred::new(pred).unwrap())
        };
        // Two goalposts out of four sequences.
        assert_eq!(est(&QueryExpr::peak_count(2, 0)), Some(2));
        assert_eq!(est(&QueryExpr::peak_count(0, 9)), Some(4));
        // Shape estimate is an upper bound from symbol statistics.
        let shape = est(&QueryExpr::shape(GOALPOST)).unwrap();
        assert!((2..=4).contains(&shape), "{shape}");
        // Interval estimate comes from the histogram.
        assert!(est(&QueryExpr::peak_interval(8, 2)).unwrap() >= 1);
        assert_eq!(est(&QueryExpr::peak_interval(999, 0)), Some(0));
        // Id ranges interpolate over the span.
        assert_eq!(est(&QueryExpr::id_range(ids[0], ids[3])), Some(4));
        assert_eq!(est(&QueryExpr::id_range(500, 900)), Some(0));
        // No statistic covers steepness or value bands.
        assert_eq!(est(&QueryExpr::min_steepness(1.0, 0.0)), None);
        // An empty store estimates nothing (no id span).
        let empty = PlanStats::from_store(&SequenceStore::default());
        assert_eq!(empty.universe, 0);
        assert_eq!(
            empty.estimate_leaf(&PreparedPred::new(&Pred::IdRange { lo: 0, hi: 9 }).unwrap()),
            None
        );
    }

    #[test]
    fn or_of_indexable_leaves_takes_the_index_union_path() {
        let (store, _) = corpus();
        // (shape OR interval) AND steepness-scan: the disjunction is pure
        // index work, so it must run before the scan leaf and the scan
        // leaf must only see the union's survivors.
        let union = QueryExpr::shape(GOALPOST).or(QueryExpr::peak_interval(8, 1));
        let expr = QueryExpr::min_steepness(0.05, 0.0).and(union.clone());
        let engine = StoreEngine::new(&store);
        let plan = engine.plan(&expr).unwrap();
        assert!(plan.explain().contains("Or (index union)"), "{}", plan.explain());
        match plan.root() {
            PlanNode::And { exec_order, .. } => {
                assert_eq!(exec_order, &vec![1, 0], "index union runs before the scan leaf");
            }
            other => panic!("expected And root, got {other:?}"),
        }
        let (out, stats) = engine.execute_with_stats(&expr).unwrap();
        let union_size = engine.execute(&union).unwrap().all_ids().len();
        assert_eq!(
            stats.entries_scanned, union_size as u64,
            "scan leaf saw only the union's candidates"
        );
        // A mixed Or (scan operand) is not index-grade.
        let mixed = QueryExpr::shape(GOALPOST).or(QueryExpr::min_steepness(0.1, 0.0));
        let mixed_plan = engine.plan(&QueryExpr::peak_count(2, 0).and(mixed)).unwrap();
        assert!(!mixed_plan.explain().contains("index union"), "{}", mixed_plan.explain());
        // Identical results to the scan-only baseline.
        let baseline = StoreEngine::with_caps(&store, IndexCaps::none()).execute(&expr).unwrap();
        assert_eq!(out, baseline);
    }

    #[test]
    fn id_bounds_require_breaker_free_plans() {
        let bounded = QueryExpr::id_range(5, 20).and(QueryExpr::peak_count(2, 0));
        assert_eq!(
            Planner::new(IndexCaps::all()).plan(&bounded).unwrap().id_bounds(),
            Some((5, 20))
        );
        let broken = bounded.clone().limit(3);
        assert_eq!(Planner::new(IndexCaps::all()).plan(&broken).unwrap().id_bounds(), None);
        let two = QueryExpr::id_range(5, 20).and(QueryExpr::id_range(10, 30));
        assert_eq!(Planner::new(IndexCaps::all()).plan(&two).unwrap().id_bounds(), Some((10, 20)));
    }

    #[test]
    fn and_intersects_and_sums_deviations() {
        let (store, ids) = corpus();
        // peaks=2 tol 1 AND interval=8 tol 1: the 3-peak sequence matches
        // both, deviating by 1 in count and 0 in interval.
        let expr = QueryExpr::peak_count(2, 1).and(QueryExpr::peak_interval(8, 1));
        let out = StoreEngine::new(&store).execute(&expr).unwrap();
        let m = out.approximate.iter().find(|m| m.id == ids[3]).expect("3-peak approx");
        assert_eq!(m.deviation, 1.0);
        assert!(!out.exact.contains(&ids[0]), "1-peak has no interval");
    }

    #[test]
    fn or_keeps_best_tier() {
        let (store, ids) = corpus();
        // 1 peak exactly OR 2 peaks ± 1: the single-peak sequence is exact
        // via the left operand even though the right matches approximately.
        let expr = QueryExpr::peak_count(1, 0).or(QueryExpr::peak_count(2, 1));
        let out = StoreEngine::new(&store).execute(&expr).unwrap();
        assert!(out.exact.contains(&ids[0]));
        assert!(out.exact.contains(&ids[1]));
        assert!(!out.approximate.iter().any(|m| m.id == ids[0]));
    }

    #[test]
    fn not_excludes_approximate_matches_too() {
        let (store, ids) = corpus();
        let expr = QueryExpr::peak_count(2, 1).negate();
        let out = StoreEngine::new(&store).execute(&expr).unwrap();
        // Everything matches peaks=2 tol 1 here, so the complement is empty.
        assert!(out.exact.is_empty(), "{out:?}");
        let strict = QueryExpr::peak_count(2, 0).negate();
        let out = StoreEngine::new(&store).execute(&strict).unwrap();
        assert_eq!(out.exact, vec![ids[0], ids[3]]);
        assert!(out.approximate.is_empty());
    }

    #[test]
    fn limit_and_top_k_truncate() {
        let (store, ids) = corpus();
        let all = QueryExpr::peak_count(2, 1);
        let limited = StoreEngine::new(&store).execute(&all.clone().limit(2)).unwrap();
        // Canonical order: the two exact goalposts come first.
        assert_eq!(limited.exact, vec![ids[1], ids[2]]);
        assert!(limited.approximate.is_empty());
        let top3 = StoreEngine::new(&store).execute(&all.top_k(3)).unwrap();
        assert_eq!(top3.exact.len() + top3.approximate.len(), 3);
        assert_eq!(top3.exact, vec![ids[1], ids[2]]);
    }

    #[test]
    fn id_range_restricts_and_stays_index_grade() {
        let (store, ids) = corpus();
        let expr = QueryExpr::peak_count(2, 0).and(QueryExpr::id_range(ids[2], u64::MAX));
        let (out, stats) = StoreEngine::new(&store).execute_with_stats(&expr).unwrap();
        assert_eq!(out.exact, vec![ids[2]]);
        // The scan leaf only saw the two candidates past ids[2].
        assert_eq!(stats.entries_scanned, 2);
    }

    #[test]
    fn index_pushdown_scans_fewer_entries() {
        let (store, _) = corpus();
        let expr = QueryExpr::shape(GOALPOST).and(QueryExpr::peak_count(2, 0));
        let (indexed_out, indexed) = StoreEngine::new(&store).execute_with_stats(&expr).unwrap();
        let (scanned_out, scanned) =
            StoreEngine::with_caps(&store, IndexCaps::none()).execute_with_stats(&expr).unwrap();
        assert_eq!(indexed_out, scanned_out, "pushdown must not change results");
        assert!(
            indexed.entries_scanned < scanned.entries_scanned,
            "indexed {indexed:?} vs scanned {scanned:?}"
        );
        assert_eq!(indexed.index_leaves, 1);
        assert_eq!(scanned.index_leaves, 0);
    }

    #[test]
    fn interval_leaf_needs_no_entries() {
        let (store, ids) = corpus();
        let (out, stats) =
            StoreEngine::new(&store).execute_with_stats(&QueryExpr::peak_interval(8, 2)).unwrap();
        assert!(out.all_ids().contains(&ids[3]), "{out:?}");
        assert_eq!(stats.entries_scanned, 0);
        // And it agrees with the scan path exactly.
        let (scan_out, _) = StoreEngine::with_caps(&store, IndexCaps::none())
            .execute_with_stats(&QueryExpr::peak_interval(8, 2))
            .unwrap();
        assert_eq!(out, scan_out);
    }

    #[test]
    fn value_band_leaf_matches_fig1_semantics() {
        let mut store = SequenceStore::new(StoreConfig::default()).unwrap();
        let center = goalpost(GoalpostSpec::default());
        let a = store.insert(&center).unwrap();
        let b = store
            .insert(&goalpost(GoalpostSpec { baseline: 98.7, ..GoalpostSpec::default() }))
            .unwrap();
        let out =
            StoreEngine::new(&store).execute(&QueryExpr::value_band(center, 0.5, 1.0)).unwrap();
        assert_eq!(out.exact, vec![a]);
        assert_eq!(out.approximate.iter().map(|m| m.id).collect::<Vec<_>>(), vec![b]);
    }

    // The deprecated shim must stay byte-identical to the unified path.
    #[test]
    #[allow(deprecated)]
    fn evaluate_shim_matches_execute() {
        let (store, _) = corpus();
        let engine = StoreEngine::new(&store);
        for spec in [
            QuerySpec::Shape { pattern: GOALPOST.into() },
            QuerySpec::PeakCount { count: 2, tolerance: 1 },
            QuerySpec::PeakInterval { interval: 8, epsilon: 2 },
            QuerySpec::MinPeakSteepness { steepness: 0.5, slack: 0.2 },
            QuerySpec::HasSteepPeak { steepness: 1.0, slack: 0.2 },
        ] {
            let via_trait = engine.evaluate(&spec).unwrap();
            let via_expr = engine.execute(&QueryExpr::from(spec.clone())).unwrap();
            assert_eq!(via_trait, via_expr, "{spec:?}");
        }
    }

    #[test]
    fn invalid_expressions_error() {
        let (store, _) = corpus();
        let engine = StoreEngine::new(&store);
        assert!(engine.execute(&QueryExpr::shape("((")).is_err());
        assert!(engine.execute(&QueryExpr::And(vec![])).is_err());
        assert!(engine.execute(&QueryExpr::Or(vec![])).is_err());
        assert!(engine
            .execute(&QueryExpr::value_band(goalpost(GoalpostSpec::default()), -1.0, 0.0))
            .is_err());
        assert!(engine.execute(&QueryExpr::id_range(10, 2)).is_err());
    }

    #[test]
    fn empty_store_is_empty_everywhere() {
        let store = SequenceStore::default();
        let engine = StoreEngine::new(&store);
        let expr = QueryExpr::peak_count(1, 0).negate().or(QueryExpr::id_range(0, 9));
        let (out, stats) = engine.execute_with_stats(&expr).unwrap();
        assert!(out.exact.is_empty() && out.approximate.is_empty());
        assert_eq!(stats.universe, 0);
    }

    #[test]
    fn match_set_algebra() {
        let mut a = MatchSet::from_exact([1, 2]);
        a.insert(3, MatchTier { deviation: 2.0, approximate: true });
        let mut b = MatchSet::from_exact([2]);
        b.insert(3, MatchTier { deviation: 1.0, approximate: true });
        b.insert(4, MatchTier::exact());

        let and = a.clone().and(&b);
        assert_eq!(and.ids(), vec![2, 3]);
        assert_eq!(and.get(3), Some(MatchTier { deviation: 3.0, approximate: true }));

        let or = a.clone().or(b);
        assert_eq!(or.ids(), vec![1, 2, 3, 4]);
        assert_eq!(or.get(3), Some(MatchTier { deviation: 1.0, approximate: true }));

        let not = a.complement_within(&[1, 2, 3, 4, 5]);
        assert_eq!(not.ids(), vec![4, 5]);

        let first = a.clone().truncate_first(2);
        assert_eq!(first.ids(), vec![1, 2], "exact matches come first");
        assert_eq!(a.clone().truncate_top_k(1).ids(), vec![1]);
        assert_eq!(a.clone().restrict(&[2, 3]).ids(), vec![2, 3]);

        let outcome = a.into_outcome();
        assert_eq!(outcome.exact, vec![1, 2]);
        assert_eq!(outcome.approximate, vec![ApproximateMatch { id: 3, deviation: 2.0 }]);
    }
}
