//! Multiple simultaneous representations (§5.2): "since our representation
//! is quite compact it would be possible to compute and store multiple
//! representations and indices for the same data. This would be useful for
//! simultaneously supporting several common query forms."
//!
//! [`MultiSeries`] stores three function-family representations of the same
//! sequence over the same breakpoints: interpolation lines (cheap slopes for
//! the pattern index), least-squares quadratics (curvature queries,
//! smoother reconstruction), and Schneider Bézier curves (graphics-style
//! rendering/look queries, §5.1's computer-graphics motivation).

use crate::brk::{Breaker, LinearInterpolationBreaker};
use crate::error::Result;
use crate::repr::FunctionSeries;
use saq_curves::{
    BezierFitter, CubicBezier, EndpointInterpolator, Line, Polynomial, PolynomialFitter,
};
use saq_sequence::Sequence;

/// Three representations of the same sequence, sharing breakpoints.
#[derive(Debug, Clone)]
pub struct MultiSeries {
    /// Interpolation lines (the paper's workhorse).
    pub linear: FunctionSeries<Line>,
    /// Per-segment least-squares quadratics.
    pub quadratic: FunctionSeries<Polynomial>,
    /// Per-segment Bézier curves.
    pub bezier: FunctionSeries<CubicBezier>,
}

/// Which stored family to read a value from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Interpolation lines.
    Linear,
    /// Quadratic polynomials.
    Quadratic,
    /// Bézier curves.
    Bezier,
}

impl MultiSeries {
    /// Breaks `seq` once (linear-interpolation breaker at ε) and fits all
    /// three families over the shared ranges. Ranges too short for a family
    /// fall back to that family's singleton/minimal fit where possible.
    pub fn build(seq: &Sequence, epsilon: f64) -> Result<MultiSeries> {
        let ranges = LinearInterpolationBreaker::new(epsilon).break_ranges(seq);
        let linear = FunctionSeries::build(seq, &ranges, &EndpointInterpolator)?;
        // Quadratics need 3 points; split any shorter range handling via the
        // fitter's singleton fallback by clamping the degree per range.
        let quadratic = build_adaptive_poly(seq, &ranges)?;
        let bezier = FunctionSeries::build(seq, &ranges, &BezierFitter::default())?;
        Ok(MultiSeries { linear, quadratic, bezier })
    }

    /// Value at `t` from the chosen family.
    pub fn value_at(&self, family: Family, t: f64) -> Result<f64> {
        match family {
            Family::Linear => self.linear.value_at(t),
            Family::Quadratic => self.quadratic.value_at(t),
            Family::Bezier => self.bezier.value_at(t),
        }
    }

    /// Max deviation of each family from the raw sequence:
    /// `(linear, quadratic, bezier)`.
    pub fn deviations(&self, seq: &Sequence) -> (f64, f64, f64) {
        (
            self.linear.max_deviation_from(seq),
            self.quadratic.max_deviation_from(seq),
            self.bezier.max_deviation_from(seq),
        )
    }

    /// Stored parameters per family: `(linear, quadratic, bezier)`.
    pub fn parameter_counts(&self) -> (usize, usize, usize) {
        (
            self.linear.compression().parameters,
            self.quadratic.compression().parameters,
            self.bezier.compression().parameters,
        )
    }
}

/// Quadratic fits where ranges allow, lower degrees where they don't.
fn build_adaptive_poly(
    seq: &Sequence,
    ranges: &[(usize, usize)],
) -> Result<FunctionSeries<Polynomial>> {
    // FunctionSeries::build fits one fixed fitter; emulate adaptivity by
    // using degree = min(2, len - 1) per range through a wrapper fitter.
    struct Adaptive;
    impl saq_curves::CurveFitter for Adaptive {
        type Curve = Polynomial;
        fn fit(&self, points: &[saq_sequence::Point]) -> saq_curves::Result<Polynomial> {
            let degree = (points.len() - 1).min(2);
            Polynomial::fit(points, degree)
        }
        fn min_points(&self) -> usize {
            1
        }
        fn fit_singleton(&self, point: saq_sequence::Point) -> saq_curves::Result<Polynomial> {
            PolynomialFitter::new(0).fit_singleton(point)
        }
    }
    FunctionSeries::build(seq, ranges, &Adaptive)
}

#[cfg(test)]
mod tests {
    use super::*;
    use saq_sequence::generators::{goalpost, GoalpostSpec};

    #[test]
    fn all_families_share_breakpoints() {
        let log = goalpost(GoalpostSpec::default());
        let multi = MultiSeries::build(&log, 1.0).unwrap();
        assert_eq!(multi.linear.segment_count(), multi.quadratic.segment_count());
        assert_eq!(multi.linear.segment_count(), multi.bezier.segment_count());
        for (a, b) in multi.linear.segments().iter().zip(multi.quadratic.segments()) {
            assert_eq!(a.start_index, b.start_index);
            assert_eq!(a.end_index, b.end_index);
        }
    }

    #[test]
    fn quadratics_reconstruct_at_least_as_well_as_lines() {
        let log = goalpost(GoalpostSpec::default());
        let multi = MultiSeries::build(&log, 1.0).unwrap();
        let (lin, quad, _bez) = multi.deviations(&log);
        assert!(quad <= lin + 1e-9, "quad {quad} lin {lin}");
        // The eps bound still holds for the linear family.
        assert!(lin <= 1.0 + 1e-9);
    }

    #[test]
    fn parameter_costs_rank_as_expected() {
        let log = goalpost(GoalpostSpec::default());
        let multi = MultiSeries::build(&log, 1.0).unwrap();
        let (lin, quad, bez) = multi.parameter_counts();
        assert!(lin <= quad, "lines are cheapest: {lin} vs {quad}");
        assert!(quad <= bez, "beziers are richest: {quad} vs {bez}");
    }

    #[test]
    fn value_at_agrees_with_underlying_family() {
        let log = goalpost(GoalpostSpec::default());
        let multi = MultiSeries::build(&log, 1.0).unwrap();
        let t = 8.25;
        assert_eq!(multi.value_at(Family::Linear, t).unwrap(), multi.linear.value_at(t).unwrap());
        assert_eq!(
            multi.value_at(Family::Quadratic, t).unwrap(),
            multi.quadratic.value_at(t).unwrap()
        );
        assert_eq!(multi.value_at(Family::Bezier, t).unwrap(), multi.bezier.value_at(t).unwrap());
    }
}
