//! The slope-sign alphabet `{−1, 0, +1}` of §4.4.
//!
//! "An index structure... is maintained on the positiveness of the
//! functions' slopes. For a fixed small number θ there are 3 possible index
//! values: +1 (slope > θ), −1 (slope < −θ), or 0 (slope between −θ and θ).
//! We take θ = 0.25."
//!
//! Symbols render as characters `u` (up, +1), `d` (down, −1), `f` (flat, 0)
//! for the pattern language; [`parse_slope_pattern`] additionally accepts
//! the paper's own notation (`1`, `-1` / `(-1)`, `0`).

use crate::repr::FunctionSeries;
use saq_curves::Curve;
use saq_pattern::{Alphabet, Regex};
use serde::{Deserialize, Serialize};

/// The paper's default θ.
pub const DEFAULT_THETA: f64 = 0.25;

/// A quantized slope sign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SlopeSymbol {
    /// Slope < −θ (the paper's −1).
    Down,
    /// |slope| ≤ θ (the paper's 0).
    Flat,
    /// Slope > θ (the paper's +1).
    Up,
}

impl SlopeSymbol {
    /// Quantizes a slope with threshold θ.
    pub fn quantize(slope: f64, theta: f64) -> SlopeSymbol {
        if slope > theta {
            SlopeSymbol::Up
        } else if slope < -theta {
            SlopeSymbol::Down
        } else {
            SlopeSymbol::Flat
        }
    }

    /// Dense id used by the pattern engine (`u`=0, `d`=1, `f`=2 — matching
    /// [`slope_alphabet`]'s symbol order).
    pub fn id(self) -> u8 {
        match self {
            SlopeSymbol::Up => 0,
            SlopeSymbol::Down => 1,
            SlopeSymbol::Flat => 2,
        }
    }

    /// Character rendering.
    pub fn as_char(self) -> char {
        match self {
            SlopeSymbol::Up => 'u',
            SlopeSymbol::Down => 'd',
            SlopeSymbol::Flat => 'f',
        }
    }

    /// The paper's numeric rendering (+1/−1/0).
    pub fn as_paper(self) -> i8 {
        match self {
            SlopeSymbol::Up => 1,
            SlopeSymbol::Down => -1,
            SlopeSymbol::Flat => 0,
        }
    }
}

/// The three-symbol alphabet `['u', 'd', 'f']` shared by all slope patterns.
pub fn slope_alphabet() -> Alphabet {
    Alphabet::new(&['u', 'd', 'f']).expect("static alphabet is valid")
}

/// Quantizes every segment slope of a representation (θ-thresholded).
pub fn series_symbols<C: Curve + Clone>(
    series: &FunctionSeries<C>,
    theta: f64,
) -> Vec<SlopeSymbol> {
    series.slopes().into_iter().map(|s| SlopeSymbol::quantize(s, theta)).collect()
}

/// Symbol ids for the pattern engine.
pub fn symbol_ids(symbols: &[SlopeSymbol]) -> Vec<u8> {
    symbols.iter().map(|s| s.id()).collect()
}

/// Renders symbols as a `u`/`d`/`f` string.
pub fn symbols_to_string(symbols: &[SlopeSymbol]) -> String {
    symbols.iter().map(|s| s.as_char()).collect()
}

/// Parses a slope pattern in either notation:
/// * character form: `f* u+ d+ f*`,
/// * the paper's numeric form: `0* 1+ (-1)+ 0*` (with `-1` usable bare or
///   parenthesized).
pub fn parse_slope_pattern(pattern: &str) -> crate::Result<Regex> {
    // Rewrite the paper notation into character symbols. `(-1)` must be
    // handled before `(`-grouping is interpreted, and `-1` before `1`.
    let rewritten =
        pattern.replace("(-1)", "d").replace("-1", "d").replace('1', "u").replace('0', "f");
    Ok(Regex::parse(&rewritten, &slope_alphabet())?)
}

/// The goal-post fever query of §4.4: exactly two peaks.
pub fn goalpost_pattern() -> Regex {
    parse_slope_pattern("0* 1+ (-1)+ 0* 1+ (-1)+ 0*").expect("static pattern is valid")
}

/// A single-peak pattern `1+ (-1)+` used for peak scanning.
pub fn peak_pattern() -> Regex {
    parse_slope_pattern("1+ (-1)+").expect("static pattern is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brk::{Breaker, LinearInterpolationBreaker};
    use crate::repr::FunctionSeries;
    use saq_curves::RegressionFitter;
    use saq_sequence::generators::{goalpost, GoalpostSpec};

    #[test]
    fn quantization_thresholds() {
        assert_eq!(SlopeSymbol::quantize(0.3, 0.25), SlopeSymbol::Up);
        assert_eq!(SlopeSymbol::quantize(-0.3, 0.25), SlopeSymbol::Down);
        assert_eq!(SlopeSymbol::quantize(0.25, 0.25), SlopeSymbol::Flat);
        assert_eq!(SlopeSymbol::quantize(-0.25, 0.25), SlopeSymbol::Flat);
        assert_eq!(SlopeSymbol::quantize(0.0, 0.0), SlopeSymbol::Flat);
        assert_eq!(SlopeSymbol::quantize(0.1, 0.0), SlopeSymbol::Up);
    }

    #[test]
    fn renderings_consistent() {
        for s in [SlopeSymbol::Up, SlopeSymbol::Down, SlopeSymbol::Flat] {
            assert_eq!(slope_alphabet().id_of(s.as_char()), Some(s.id()));
        }
        assert_eq!(SlopeSymbol::Up.as_paper(), 1);
        assert_eq!(SlopeSymbol::Down.as_paper(), -1);
        assert_eq!(SlopeSymbol::Flat.as_paper(), 0);
    }

    #[test]
    fn paper_notation_equivalent_to_char_notation() {
        let a = parse_slope_pattern("0* 1+ (-1)+ 0*").unwrap();
        let b = parse_slope_pattern("f* u+ d+ f*").unwrap();
        assert_eq!(a.ast(), b.ast());
        // Bare -1 also works.
        let c = parse_slope_pattern("0* 1+ -1+ 0*").unwrap();
        assert_eq!(a.ast(), c.ast());
    }

    #[test]
    fn goalpost_series_matches_goalpost_pattern() {
        let log = goalpost(GoalpostSpec::default());
        let ranges = LinearInterpolationBreaker::new(1.0).break_ranges(&log);
        let series = FunctionSeries::build(&log, &ranges, &RegressionFitter).unwrap();
        let symbols = series_symbols(&series, DEFAULT_THETA);
        let ids = symbol_ids(&symbols);
        let dfa = goalpost_pattern().compile();
        assert!(dfa.is_match(&ids), "symbols {}", symbols_to_string(&symbols));
    }

    #[test]
    fn one_peak_does_not_match_goalpost() {
        use saq_sequence::generators::{peaks, PeaksSpec};
        let log = peaks(PeaksSpec { centers: vec![12.0], ..PeaksSpec::default() });
        let ranges = LinearInterpolationBreaker::new(1.0).break_ranges(&log);
        let series = FunctionSeries::build(&log, &ranges, &RegressionFitter).unwrap();
        let ids = symbol_ids(&series_symbols(&series, DEFAULT_THETA));
        assert!(!goalpost_pattern().compile().is_match(&ids));
        // But the single-peak pattern finds exactly one peak.
        let matches = peak_pattern().compile().find_matches(&ids);
        assert_eq!(matches.len(), 1);
    }

    #[test]
    fn symbols_to_string_roundtrip() {
        let syms = vec![SlopeSymbol::Up, SlopeSymbol::Down, SlopeSymbol::Flat];
        assert_eq!(symbols_to_string(&syms), "udf");
        let ids = symbol_ids(&syms);
        assert_eq!(slope_alphabet().decode(&ids).unwrap(), "udf");
    }
}
