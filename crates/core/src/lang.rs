//! A small textual query language for generalized approximate queries —
//! the paper's §6 future work ("Define a query language that supports
//! generalized approximate queries"), in the constraint-per-dimension
//! style it sketches: the user states the shape and per-dimension error
//! tolerances.
//!
//! Grammar (case-insensitive keywords, `#`-comments, clauses joined by
//! `and`):
//!
//! ```text
//! query     := clause ('and' clause)*
//! clause    := shape | peaks | interval | steepness
//! shape     := 'shape' STRING                  -- slope pattern, both notations
//! peaks     := 'peaks' '=' INT ('tol' INT)?
//! interval  := 'interval' '=' INT ('tol' INT)?
//! steepness := 'steepness' ('all' | 'any') '>=' FLOAT ('slack' FLOAT)?
//! ```
//!
//! Example: `shape "0* 1+ (-1)+ 0*" and peaks = 1 tol 0`.
//!
//! A conjunctive query is evaluated clause by clause; a sequence is an
//! **exact** result if exact in every clause, and **approximate** if it
//! matches every clause with at least one within-tolerance deviation (the
//! total deviation is the sum across dimensions — each dimension carries
//! its own metric, per §2.2).

use crate::algebra::{QueryExpr, StoreEngine};
use crate::error::{Error, Result};
use crate::query::{ApproximateMatch, QueryOutcome, QuerySpec};
use crate::store::SequenceStore;
use std::collections::HashMap;

/// A parsed conjunctive query.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedQuery {
    clauses: Vec<QuerySpec>,
}

impl ParsedQuery {
    /// The parsed clauses, in source order.
    pub fn clauses(&self) -> &[QuerySpec] {
        &self.clauses
    }

    /// Lowers the clauses to a conjunctive algebra expression (a single
    /// clause becomes a bare leaf).
    pub fn into_expr(self) -> QueryExpr {
        let mut leaves = self.clauses.into_iter().map(QueryExpr::feature);
        let first = leaves.next().expect("parser rejects empty queries");
        leaves.fold(first, QueryExpr::and)
    }
}

/// Parses the textual language into clauses.
pub fn parse_query(text: &str) -> Result<ParsedQuery> {
    let tokens = tokenize(text)?;
    if tokens.is_empty() {
        return Err(Error::BadConfig("empty query".into()));
    }
    let mut parser = Parser { tokens, pos: 0 };
    let mut clauses = vec![parser.clause()?];
    while !parser.at_end() {
        parser.expect_keyword("and")?;
        clauses.push(parser.clause()?);
    }
    Ok(ParsedQuery { clauses })
}

/// Parses and evaluates a conjunctive query against a store.
///
/// Clauses lower to a conjunctive [`QueryExpr`] executed by the
/// planner-backed [`StoreEngine`], so shape and interval clauses are
/// served by the store's indexes and the remaining clauses only scan the
/// already-narrowed candidates.
pub fn run_query(store: &SequenceStore, text: &str) -> Result<QueryOutcome> {
    use crate::algebra::QueryEngine as _;
    StoreEngine::new(store).execute(&parse_query(text)?.into_expr())
}

/// Combines per-clause outcomes conjunctively.
pub fn conjoin(outcomes: &[QueryOutcome]) -> QueryOutcome {
    if outcomes.is_empty() {
        return QueryOutcome::default();
    }
    // tier: Some(total deviation) if matched, None if not; 0.0 = exact.
    let mut tally: HashMap<u64, (usize, f64, bool)> = HashMap::new();
    for outcome in outcomes {
        for id in &outcome.exact {
            let e = tally.entry(*id).or_insert((0, 0.0, false));
            e.0 += 1;
        }
        for m in &outcome.approximate {
            let e = tally.entry(m.id).or_insert((0, 0.0, false));
            e.0 += 1;
            e.1 += m.deviation;
            e.2 = true;
        }
    }
    let total = outcomes.len();
    let mut exact = Vec::new();
    let mut approximate = Vec::new();
    for (id, (hits, dev, any_approx)) in tally {
        if hits == total {
            if any_approx {
                approximate.push(ApproximateMatch { id, deviation: dev });
            } else {
                exact.push(id);
            }
        }
    }
    exact.sort_unstable();
    approximate.sort_by(|a, b| {
        a.deviation.partial_cmp(&b.deviation).expect("finite deviations").then(a.id.cmp(&b.id))
    });
    QueryOutcome { exact, approximate }
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Word(String),
    Str(String),
    Number(f64),
    Eq,
    Ge,
}

fn tokenize(text: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
        } else if c == '#' {
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
        } else if c == '"' {
            let start = i + 1;
            let mut j = start;
            while j < chars.len() && chars[j] != '"' {
                j += 1;
            }
            if j >= chars.len() {
                return Err(Error::BadConfig("unterminated string literal".into()));
            }
            out.push(Token::Str(chars[start..j].iter().collect()));
            i = j + 1;
        } else if c == '=' {
            out.push(Token::Eq);
            i += 1;
        } else if c == '>' && chars.get(i + 1) == Some(&'=') {
            out.push(Token::Ge);
            i += 2;
        } else if c.is_ascii_digit() || c == '-' || c == '.' {
            let start = i;
            i += 1;
            while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                i += 1;
            }
            let s: String = chars[start..i].iter().collect();
            let v: f64 = s.parse().map_err(|_| Error::BadConfig(format!("bad number `{s}`")))?;
            out.push(Token::Number(v));
        } else if c.is_alphabetic() {
            let start = i;
            while i < chars.len() && chars[i].is_alphanumeric() {
                i += 1;
            }
            out.push(Token::Word(chars[start..i].iter().collect::<String>().to_lowercase()));
        } else {
            return Err(Error::BadConfig(format!("unexpected character `{c}`")));
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Result<&Token> {
        let t = self
            .tokens
            .get(self.pos)
            .ok_or_else(|| Error::BadConfig("unexpected end of query".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        match self.next()? {
            Token::Word(w) if w == kw => Ok(()),
            other => Err(Error::BadConfig(format!("expected `{kw}`, got {other:?}"))),
        }
    }

    fn expect_number(&mut self) -> Result<f64> {
        match self.next()? {
            Token::Number(v) => Ok(*v),
            other => Err(Error::BadConfig(format!("expected a number, got {other:?}"))),
        }
    }

    fn optional_number_after(&mut self, kw: &str) -> Result<Option<f64>> {
        if matches!(self.peek(), Some(Token::Word(w)) if w == kw) {
            self.pos += 1;
            Ok(Some(self.expect_number()?))
        } else {
            Ok(None)
        }
    }

    fn clause(&mut self) -> Result<QuerySpec> {
        let head = match self.next()? {
            Token::Word(w) => w.clone(),
            other => return Err(Error::BadConfig(format!("expected a clause, got {other:?}"))),
        };
        match head.as_str() {
            "shape" => match self.next()? {
                Token::Str(s) => Ok(QuerySpec::Shape { pattern: s.clone() }),
                other => Err(Error::BadConfig(format!(
                    "`shape` expects a quoted pattern, got {other:?}"
                ))),
            },
            "peaks" => {
                self.expect_eq()?;
                let count = self.expect_count()?;
                let tol = self.optional_number_after("tol")?.unwrap_or(0.0);
                Ok(QuerySpec::PeakCount { count, tolerance: tol as usize })
            }
            "interval" => {
                self.expect_eq()?;
                let interval = self.expect_number()?;
                let tol = self.optional_number_after("tol")?.unwrap_or(0.0);
                Ok(QuerySpec::PeakInterval {
                    interval: interval.round() as i64,
                    epsilon: tol.round() as i64,
                })
            }
            "steepness" => {
                let mode = match self.next()? {
                    Token::Word(w) if w == "all" || w == "any" => w.clone(),
                    other => {
                        return Err(Error::BadConfig(format!(
                            "`steepness` expects `all` or `any`, got {other:?}"
                        )))
                    }
                };
                match self.next()? {
                    Token::Ge => {}
                    other => return Err(Error::BadConfig(format!("expected `>=`, got {other:?}"))),
                }
                let steepness = self.expect_number()?;
                let slack = self.optional_number_after("slack")?.unwrap_or(0.0);
                if mode == "all" {
                    Ok(QuerySpec::MinPeakSteepness { steepness, slack })
                } else {
                    Ok(QuerySpec::HasSteepPeak { steepness, slack })
                }
            }
            other => Err(Error::BadConfig(format!("unknown clause `{other}`"))),
        }
    }

    fn expect_eq(&mut self) -> Result<()> {
        match self.next()? {
            Token::Eq => Ok(()),
            other => Err(Error::BadConfig(format!("expected `=`, got {other:?}"))),
        }
    }

    fn expect_count(&mut self) -> Result<usize> {
        let v = self.expect_number()?;
        if v < 0.0 || v.fract() != 0.0 {
            return Err(Error::BadConfig(format!("expected a non-negative integer, got {v}")));
        }
        Ok(v as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;
    use saq_sequence::generators::{goalpost, peaks, GoalpostSpec, PeaksSpec};

    fn corpus() -> (SequenceStore, Vec<u64>) {
        let mut store = SequenceStore::new(StoreConfig::default()).unwrap();
        let mut ids = Vec::new();
        for seq in [
            peaks(PeaksSpec { centers: vec![12.0], ..PeaksSpec::default() }),
            goalpost(GoalpostSpec::default()),
            peaks(PeaksSpec { centers: vec![4.0, 12.0, 20.0], ..PeaksSpec::default() }),
        ] {
            ids.push(store.insert(&seq).unwrap());
        }
        (store, ids)
    }

    #[test]
    fn parses_every_clause_kind() {
        let q = parse_query(
            r#"shape "0* 1+ (-1)+ 0*" and peaks = 2 tol 1 and interval = 136 tol 3
               and steepness all >= 2.0 slack 0.25 and steepness any >= 5"#,
        )
        .unwrap();
        assert_eq!(q.clauses().len(), 5);
        assert!(matches!(q.clauses()[0], QuerySpec::Shape { .. }));
        assert!(matches!(q.clauses()[1], QuerySpec::PeakCount { count: 2, tolerance: 1 }));
        assert!(matches!(q.clauses()[2], QuerySpec::PeakInterval { interval: 136, epsilon: 3 }));
        assert!(matches!(q.clauses()[3], QuerySpec::MinPeakSteepness { .. }));
        assert!(matches!(q.clauses()[4], QuerySpec::HasSteepPeak { .. }));
    }

    #[test]
    fn comments_and_case_insensitivity() {
        let q = parse_query("PEAKS = 2 # the goal-post count\n").unwrap();
        assert_eq!(q.clauses().len(), 1);
    }

    #[test]
    fn parse_errors_are_descriptive() {
        for (text, needle) in [
            ("", "empty"),
            ("shape pattern", "quoted"),
            ("peaks 2", "expected `=`"),
            ("peaks = 2.5", "integer"),
            ("steepness maybe >= 1", "`all` or `any`"),
            ("bogus = 1", "unknown clause"),
            ("peaks = 2 peaks = 3", "expected `and`"),
            (r#"shape "unterminated"#, "unterminated"),
        ] {
            let err = parse_query(text).unwrap_err().to_string();
            assert!(err.contains(needle), "`{text}` -> `{err}`");
        }
    }

    #[test]
    fn single_clause_runs_like_evaluate() {
        let (store, ids) = corpus();
        let out = run_query(&store, r#"shape "0* 1+ (-1)+ 0* 1+ (-1)+ 0*""#).unwrap();
        assert_eq!(out.exact, vec![ids[1]]);
    }

    #[test]
    fn conjunction_intersects() {
        let (store, ids) = corpus();
        // Two peaks AND an inter-peak interval near 10h: only the goalpost.
        let out = run_query(&store, "peaks = 2 and interval = 10 tol 2").unwrap();
        assert_eq!(out.exact, vec![ids[1]]);
        // Two peaks (tol 1) AND interval near 8: the 3-peak sequence
        // (interval-exact, count off by one) surfaces as approximate.
        let out = run_query(&store, "peaks = 2 tol 1 and interval = 8 tol 1").unwrap();
        assert!(out.approximate.iter().any(|m| m.id == ids[2]), "{out:?}");
        assert!(!out.exact.contains(&ids[2]));
    }

    #[test]
    fn conjunction_requires_all_clauses() {
        let (store, ids) = corpus();
        // One peak AND three peaks: unsatisfiable.
        let out = run_query(&store, "peaks = 1 and peaks = 3").unwrap();
        assert!(out.exact.is_empty() && out.approximate.is_empty());
        // One peak alone matches the single-peak sequence.
        let out = run_query(&store, "peaks = 1").unwrap();
        assert_eq!(out.exact, vec![ids[0]]);
    }

    #[test]
    fn deviations_sum_across_dimensions() {
        let (store, ids) = corpus();
        // Count tol 2 + interval tol 3: the 3-peak sequence deviates by 1
        // in count and 2 in interval when asked for interval = 10.
        let out = run_query(&store, "peaks = 2 tol 2 and interval = 10 tol 3").unwrap();
        if let Some(m) = out.approximate.iter().find(|m| m.id == ids[2]) {
            assert!(m.deviation >= 1.0, "{m:?}");
        }
    }

    #[test]
    fn conjoin_empty_is_empty() {
        assert_eq!(conjoin(&[]), QueryOutcome::default());
    }
}
