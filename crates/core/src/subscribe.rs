//! Standing queries: subscriptions re-evaluated as the store mutates.
//!
//! The paper's sequences are *recorded over time*, so the natural query
//! mode is continuous: register a SAQL expression once and learn, after
//! every mutation wave, which sequences **entered** and which **left**
//! its result set. [`SubscriptionRegistry`] owns that loop. It stores
//! each subscription's expression, physical plan, and last-known result
//! set; [`SubscriptionRegistry::pump`] re-evaluates against an engine
//! and emits [`Delta`]s.
//!
//! The point of keeping the plan around is *pruning*: most waves touch a
//! handful of ids, and most subscriptions provably cannot change from
//! them. `pump` skips a subscription when
//!
//! 1. the wave's dirty-id set is empty (nothing changed),
//! 2. no dirty id falls inside the plan's conjunctive
//!    [`PhysicalPlan::id_bounds`] (changed sequences can't be members
//!    either before or after), or
//! 3. the index statistics prove the result set is empty — a whole-plan
//!    upper bound folded from the *sound* per-leaf estimates only
//!    (shape, peak-interval, and peak-count leaves read fresh
//!    [`saq_index::IndexStats`] upper bounds; id-range and value-band
//!    estimates are guesses and are never used to skip).
//!
//! A dirty set of `None` means *wildcard*: an id-less whole-store
//! mutation (or a coalesced-away history) where anything may have
//! changed. Wildcards force re-evaluation of **every** subscription —
//! treating them as an empty delta is precisely the silent-staleness bug
//! `tests/prop_subscriptions.rs` locks down.

use std::collections::BTreeMap;
use std::fmt;

use crate::algebra::{
    IndexCaps, PhysicalPlan, PlanNode, PlanStats, Planner, Pred, QueryEngine, QueryExpr,
};
use crate::error::Result;
use crate::query::{QueryOutcome, QuerySpec};

/// Opaque handle for one registered subscription. Ids are never reused
/// within a registry's lifetime, so a stale handle can't alias a newer
/// subscription.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubscriptionId(u64);

impl SubscriptionId {
    /// The wire representation (`saqd` renders this in frame headers).
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds a handle from its wire representation.
    pub fn from_raw(raw: u64) -> SubscriptionId {
        SubscriptionId(raw)
    }
}

impl fmt::Display for SubscriptionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The membership change one pump produced for one subscription: ids
/// that joined the result set and ids that dropped out, both ascending.
/// `entered ∪ (previous − left)` is exactly the fresh result set — the
/// invariant the property suite checks against a batch oracle.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Delta {
    /// Ids in the result set now that were not before, ascending.
    pub entered: Vec<u64>,
    /// Ids no longer in the result set, ascending.
    pub left: Vec<u64>,
}

impl Delta {
    /// True when membership did not change.
    pub fn is_empty(&self) -> bool {
        self.entered.is_empty() && self.left.is_empty()
    }
}

/// Cumulative work counters across every [`SubscriptionRegistry::pump`]:
/// the experiments assert `evaluated` stays far below the
/// subscriptions × waves product a naive re-run would pay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PumpCounters {
    /// Subscriptions actually executed against the engine.
    pub evaluated: u64,
    /// Subscriptions skipped because the wave's dirty set was empty.
    pub skipped_clean: u64,
    /// Subscriptions skipped because no dirty id intersected the plan's
    /// conjunctive id bounds.
    pub skipped_id_bounds: u64,
    /// Subscriptions resolved to a provably empty result by index
    /// statistics alone (no engine execution).
    pub skipped_index: u64,
    /// Non-empty deltas handed back to callers.
    pub deltas_emitted: u64,
}

struct Subscription {
    expr: QueryExpr,
    plan: PhysicalPlan,
    /// Sorted result-set ids at the last evaluation; `None` until the
    /// baseline evaluation, which pruning must never skip.
    current: Option<Vec<u64>>,
}

/// The registry of standing queries. See the module docs for the pump
/// contract and the pruning ladder.
#[derive(Default)]
pub struct SubscriptionRegistry {
    next: u64,
    subs: BTreeMap<u64, Subscription>,
    counters: PumpCounters,
}

impl SubscriptionRegistry {
    /// An empty registry.
    pub fn new() -> SubscriptionRegistry {
        SubscriptionRegistry::default()
    }

    /// Registers an expression. Planning happens here (with every index
    /// capability, purely for pruning metadata), so malformed patterns
    /// are rejected at registration instead of poisoning later pumps.
    /// The first pump after registration always evaluates — it reports
    /// the baseline result set as `entered`.
    pub fn register(&mut self, expr: QueryExpr) -> Result<SubscriptionId> {
        let plan = Planner::new(IndexCaps::all()).plan(&expr)?;
        let id = self.next;
        self.next += 1;
        self.subs.insert(id, Subscription { expr, plan, current: None });
        Ok(SubscriptionId(id))
    }

    /// Parses SAQL text and registers it; parse errors carry the caret
    /// diagnostic, exactly as `QueryRequest::saql` would surface them.
    pub fn register_saql(&mut self, text: &str) -> Result<SubscriptionId> {
        let expr = crate::lang::saql::parse(text)?;
        self.register(expr)
    }

    /// Drops a subscription. Returns false when the id was never
    /// registered or already unregistered.
    pub fn unregister(&mut self, id: SubscriptionId) -> bool {
        self.subs.remove(&id.0).is_some()
    }

    /// Number of live subscriptions.
    pub fn len(&self) -> usize {
        self.subs.len()
    }

    /// True when no subscription is registered.
    pub fn is_empty(&self) -> bool {
        self.subs.is_empty()
    }

    /// The live subscription ids, ascending.
    pub fn ids(&self) -> Vec<SubscriptionId> {
        self.subs.keys().map(|&k| SubscriptionId(k)).collect()
    }

    /// The registered expression behind `id`, when live.
    pub fn expr(&self, id: SubscriptionId) -> Option<&QueryExpr> {
        self.subs.get(&id.0).map(|s| &s.expr)
    }

    /// The last-known result set of `id` (sorted ids), when live and at
    /// least one pump has evaluated it.
    pub fn current(&self, id: SubscriptionId) -> Option<&[u64]> {
        self.subs.get(&id.0).and_then(|s| s.current.as_deref())
    }

    /// Cumulative pump counters.
    pub fn counters(&self) -> PumpCounters {
        self.counters
    }

    /// Re-evaluates subscriptions against `engine` after a mutation wave
    /// and returns the non-empty deltas in subscription-id order.
    ///
    /// `dirty` is the wave's changed-id set, i.e. what
    /// `changed_since(last_pumped_generation)` reported: `Some(ids)`
    /// enables pruning, **`None` is the wildcard** and disables it
    /// (every subscription re-evaluates). Callers must pass the
    /// wildcard through as `None` — collapsing it to `Some(&[])` would
    /// silently freeze every subscription.
    ///
    /// `stats` enables the index-statistics empty proof; it must be
    /// fresh for the exact engine state being pumped (e.g.
    /// [`PlanStats::from_snapshot`] of the same pinned snapshot), since
    /// a stale upper bound of zero would skip real matches.
    pub fn pump<E: QueryEngine + ?Sized>(
        &mut self,
        engine: &E,
        dirty: Option<&[u64]>,
        stats: Option<&PlanStats>,
    ) -> Result<Vec<(SubscriptionId, Delta)>> {
        let mut out = Vec::new();
        for (&id, sub) in self.subs.iter_mut() {
            if sub.current.is_some() {
                match dirty {
                    // Wildcard: anything may have changed — evaluate.
                    None => {}
                    Some([]) => {
                        self.counters.skipped_clean += 1;
                        continue;
                    }
                    Some(ids) => {
                        if let Some((lo, hi)) = sub.plan.id_bounds() {
                            if !ids.iter().any(|d| (lo..=hi).contains(d)) {
                                self.counters.skipped_id_bounds += 1;
                                continue;
                            }
                        }
                        if let Some(ps) = stats {
                            if plan_upper_bound(sub.plan.root(), ps) == Some(0) {
                                // Provably empty now: anything previously
                                // in the set has left.
                                self.counters.skipped_index += 1;
                                let prev = sub.current.replace(Vec::new()).unwrap_or_default();
                                if !prev.is_empty() {
                                    out.push((
                                        SubscriptionId(id),
                                        Delta { entered: Vec::new(), left: prev },
                                    ));
                                }
                                continue;
                            }
                        }
                    }
                }
            }
            self.counters.evaluated += 1;
            let next = outcome_ids(engine.execute(&sub.expr)?);
            let prev = sub.current.replace(next.clone()).unwrap_or_default();
            let delta = diff_sorted(&prev, &next);
            if !delta.is_empty() {
                out.push((SubscriptionId(id), delta));
            }
        }
        self.counters.deltas_emitted += out.len() as u64;
        Ok(out)
    }
}

/// The sorted, deduplicated id membership of an outcome — exact and
/// approximate tiers both count (a standing query watches the whole
/// answer the same request would return).
fn outcome_ids(outcome: QueryOutcome) -> Vec<u64> {
    let mut ids = outcome.exact;
    ids.extend(outcome.approximate.into_iter().map(|m| m.id));
    ids.sort_unstable();
    ids.dedup();
    ids
}

/// `entered` = in `next` but not `prev`; `left` = in `prev` but not
/// `next`. Both inputs sorted ascending.
fn diff_sorted(prev: &[u64], next: &[u64]) -> Delta {
    let mut delta = Delta::default();
    let (mut i, mut j) = (0, 0);
    while i < prev.len() || j < next.len() {
        match (prev.get(i), next.get(j)) {
            (Some(&p), Some(&n)) if p == n => {
                i += 1;
                j += 1;
            }
            (Some(&p), Some(&n)) if p < n => {
                delta.left.push(p);
                i += 1;
            }
            (Some(_), Some(&n)) => {
                delta.entered.push(n);
                j += 1;
            }
            (Some(&p), None) => {
                delta.left.push(p);
                i += 1;
            }
            (None, Some(&n)) => {
                delta.entered.push(n);
                j += 1;
            }
            (None, None) => unreachable!("loop condition"),
        }
    }
    delta
}

/// A sound upper bound on the plan's result-set size, or `None` when the
/// statistics can't bound it. Only the three estimate kinds documented
/// as upper bounds participate (shape, peak-interval, peak-count, read
/// straight from the index statistics — observed-cardinality overrides
/// are deliberately bypassed: they describe a *past* generation, and an
/// unsound zero here would silently drop real matches).
fn plan_upper_bound(node: &PlanNode, stats: &PlanStats) -> Option<u64> {
    let index = stats.index.as_ref();
    match node {
        PlanNode::Leaf { pred, .. } => match pred.pred() {
            Pred::Feature(QuerySpec::Shape { .. }) => {
                Some(index?.pattern.estimate_full_matches(pred.regex()?.ast()))
            }
            Pred::Feature(QuerySpec::PeakInterval { interval, epsilon }) => {
                Some(index?.interval.estimate_matches(*interval, *epsilon))
            }
            Pred::Feature(QuerySpec::PeakCount { count, tolerance }) => {
                Some(index?.estimate_peak_count(*count, *tolerance))
            }
            _ => None,
        },
        PlanNode::And { children, .. } => {
            children.iter().filter_map(|c| plan_upper_bound(c, stats)).min()
        }
        PlanNode::Or(children) => children
            .iter()
            .map(|c| plan_upper_bound(c, stats))
            .try_fold(0u64, |acc, b| Some(acc.saturating_add(b?))),
        PlanNode::Not(_) => None,
        PlanNode::Limit(child, n) | PlanNode::TopK(child, n) => {
            Some(plan_upper_bound(child, stats).map_or(*n as u64, |b| b.min(*n as u64)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::StoreEngine;
    use crate::store::SequenceStore;
    use saq_sequence::generators::{goalpost, GoalpostSpec};

    fn store_with(n: usize) -> SequenceStore {
        let mut store = SequenceStore::default();
        for _ in 0..n {
            store.insert(&goalpost(GoalpostSpec::default())).unwrap();
        }
        store
    }

    #[test]
    fn baseline_pump_reports_the_full_result_set() {
        let store = store_with(3);
        let mut reg = SubscriptionRegistry::new();
        let id = reg.register(QueryExpr::peak_count(2, 0)).unwrap();
        // Even a clean wave must evaluate a never-evaluated subscription.
        let deltas = reg.pump(&StoreEngine::new(&store), Some(&[]), None).unwrap();
        assert_eq!(deltas, vec![(id, Delta { entered: vec![1, 2, 3], left: vec![] })]);
        assert_eq!(reg.current(id), Some(&[1, 2, 3][..]));
        // A second clean wave is a no-op.
        let deltas = reg.pump(&StoreEngine::new(&store), Some(&[]), None).unwrap();
        assert!(deltas.is_empty());
        assert_eq!(reg.counters().skipped_clean, 1);
        assert_eq!(reg.counters().evaluated, 1);
    }

    #[test]
    fn wildcard_forces_reevaluation_of_every_subscription() {
        let mut store = store_with(2);
        let mut reg = SubscriptionRegistry::new();
        let id = reg.register(QueryExpr::peak_count(2, 0)).unwrap();
        reg.pump(&StoreEngine::new(&store), None, None).unwrap();
        assert_eq!(reg.current(id), Some(&[1, 2][..]));

        // The store changes out from under the registry with no id
        // attribution — the wildcard case (`mark_all_changed`).
        store.remove(1).unwrap();

        // Regression guard: a wildcard treated as "no ids changed" would
        // freeze the subscription forever.
        let frozen = reg.pump(&StoreEngine::new(&store), Some(&[]), None).unwrap();
        assert!(frozen.is_empty(), "empty dirty set must skip — that's its contract");

        // Passing the wildcard through as `None` re-evaluates.
        let deltas = reg.pump(&StoreEngine::new(&store), None, None).unwrap();
        assert_eq!(deltas, vec![(id, Delta { entered: vec![], left: vec![1] })]);
    }

    #[test]
    fn id_bounds_prune_unrelated_dirty_ids() {
        let store = store_with(4);
        let mut reg = SubscriptionRegistry::new();
        let id = reg.register(QueryExpr::peak_count(2, 0).and(QueryExpr::id_range(1, 2))).unwrap();
        let engine = StoreEngine::new(&store);
        reg.pump(&engine, None, None).unwrap();
        assert_eq!(reg.current(id), Some(&[1, 2][..]));

        // Dirty ids outside [1, 2] cannot change membership.
        let deltas = reg.pump(&engine, Some(&[3, 4]), None).unwrap();
        assert!(deltas.is_empty());
        assert_eq!(reg.counters().skipped_id_bounds, 1);
        assert_eq!(reg.counters().evaluated, 1);

        // A dirty id inside the bounds re-evaluates.
        reg.pump(&engine, Some(&[2]), None).unwrap();
        assert_eq!(reg.counters().evaluated, 2);
    }

    #[test]
    fn index_statistics_prove_empty_without_executing() {
        let store = store_with(3);
        let mut reg = SubscriptionRegistry::new();
        // Goalposts have two peaks; nothing has seven.
        let id = reg.register(QueryExpr::peak_count(7, 0)).unwrap();
        let engine = StoreEngine::new(&store);
        reg.pump(&engine, None, None).unwrap();
        assert_eq!(reg.current(id), Some(&[][..]));

        let stats = PlanStats::from_store(&store);
        let deltas = reg.pump(&engine, Some(&[1, 2, 3]), Some(&stats)).unwrap();
        assert!(deltas.is_empty());
        assert_eq!(reg.counters().skipped_index, 1);
        assert_eq!(reg.counters().evaluated, 1, "the zero bound must not execute");
    }

    #[test]
    fn unregister_stops_deltas_and_ids_never_recycle() {
        let store = store_with(1);
        let mut reg = SubscriptionRegistry::new();
        let a = reg.register_saql("peaks = 2").unwrap();
        assert!(reg.unregister(a));
        assert!(!reg.unregister(a));
        let b = reg.register_saql("peaks = 2").unwrap();
        assert_ne!(a, b);
        let deltas = reg.pump(&StoreEngine::new(&store), None, None).unwrap();
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].0, b);
    }

    #[test]
    fn saql_registration_rejects_parse_errors() {
        let mut reg = SubscriptionRegistry::new();
        assert!(reg.register_saql("peaks = ").is_err());
        assert!(reg.is_empty());
    }
}
