//! Persistence for linear representations.
//!
//! The paper's premise is that representations are "significantly more
//! space efficient than the original" and therefore *storable locally*;
//! this module gives [`LinearSeries`] a compact, human-auditable text form
//! (one segment per line) so representations survive process restarts and
//! can be shipped between sites without the raw data.
//!
//! Format (version-tagged, `#`-comments tolerated):
//!
//! ```text
//! saq-linear-series v1 <original_len> <segment_count>
//! <start_index> <end_index> <start_t> <start_v> <end_t> <end_v> <slope> <intercept>
//! ...
//! ```

use crate::error::{Error, Result};
use crate::repr::{FunctionSeries, LinearSeries, Segment};
use saq_curves::Line;
use saq_sequence::Point;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &str = "saq-linear-series v1";

/// Writes a linear series in the v1 text format.
pub fn write_series<W: Write>(series: &LinearSeries, out: W) -> Result<()> {
    let mut w = BufWriter::new(out);
    writeln!(w, "{MAGIC} {} {}", series.original_len(), series.segment_count()).map_err(io_err)?;
    for seg in series.segments() {
        writeln!(
            w,
            "{} {} {} {} {} {} {} {}",
            seg.start_index,
            seg.end_index,
            seg.start.t,
            seg.start.v,
            seg.end.t,
            seg.end.v,
            seg.curve.slope,
            seg.curve.intercept
        )
        .map_err(io_err)?;
    }
    w.flush().map_err(io_err)
}

/// Reads a linear series from the v1 text format.
pub fn read_series<R: Read>(input: R) -> Result<LinearSeries> {
    let reader = BufReader::new(input);
    let mut lines = reader.lines().enumerate().filter_map(|(no, l)| match l {
        Ok(text) => {
            let trimmed = text.trim().to_string();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                None
            } else {
                Some(Ok((no + 1, trimmed)))
            }
        }
        Err(e) => Some(Err(Error::Sequence(saq_sequence::Error::Io(e)))),
    });

    let (_, header) = lines.next().ok_or_else(|| bad(0, "empty representation file"))??;
    let rest = header.strip_prefix(MAGIC).ok_or_else(|| bad(1, "missing or unsupported header"))?;
    let mut head_fields = rest.split_whitespace();
    let original_len: usize = parse_field(head_fields.next(), 1, "original length")?;
    let segment_count: usize = parse_field(head_fields.next(), 1, "segment count")?;

    let mut segments = Vec::with_capacity(segment_count);
    for item in lines {
        let (lineno, text) = item?;
        let mut f = text.split_whitespace();
        let start_index: usize = parse_field(f.next(), lineno, "start index")?;
        let end_index: usize = parse_field(f.next(), lineno, "end index")?;
        let st: f64 = parse_field(f.next(), lineno, "start t")?;
        let sv: f64 = parse_field(f.next(), lineno, "start v")?;
        let et: f64 = parse_field(f.next(), lineno, "end t")?;
        let ev: f64 = parse_field(f.next(), lineno, "end v")?;
        let slope: f64 = parse_field(f.next(), lineno, "slope")?;
        let intercept: f64 = parse_field(f.next(), lineno, "intercept")?;
        if f.next().is_some() {
            return Err(bad(lineno, "trailing fields"));
        }
        segments.push(Segment {
            start_index,
            end_index,
            start: Point::new(st, sv),
            end: Point::new(et, ev),
            curve: Line::new(slope, intercept),
        });
    }
    if segments.len() != segment_count {
        return Err(bad(
            0,
            &format!("expected {segment_count} segments, found {}", segments.len()),
        ));
    }
    FunctionSeries::from_segments(segments, original_len)
}

/// Saves to a file path.
pub fn save_series<P: AsRef<Path>>(series: &LinearSeries, path: P) -> Result<()> {
    let file = std::fs::File::create(path).map_err(io_err)?;
    write_series(series, file)
}

/// Loads from a file path.
pub fn load_series<P: AsRef<Path>>(path: P) -> Result<LinearSeries> {
    let file = std::fs::File::open(path).map_err(io_err)?;
    read_series(file)
}

fn io_err(e: std::io::Error) -> Error {
    Error::Sequence(saq_sequence::Error::Io(e))
}

fn bad(line: usize, message: &str) -> Error {
    Error::BadConfig(format!("representation file line {line}: {message}"))
}

fn parse_field<T: std::str::FromStr>(field: Option<&str>, line: usize, what: &str) -> Result<T> {
    let text = field.ok_or_else(|| bad(line, &format!("missing {what}")))?;
    text.parse().map_err(|_| bad(line, &format!("bad {what} `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brk::{Breaker, LinearInterpolationBreaker};
    use saq_curves::RegressionFitter;
    use saq_sequence::generators::{goalpost, GoalpostSpec};

    fn sample_series() -> LinearSeries {
        let log = goalpost(GoalpostSpec::default());
        let ranges = LinearInterpolationBreaker::new(1.0).break_ranges(&log);
        FunctionSeries::build(&log, &ranges, &RegressionFitter).unwrap()
    }

    #[test]
    fn roundtrip_through_memory() {
        let series = sample_series();
        let mut buf = Vec::new();
        write_series(&series, &mut buf).unwrap();
        let back = read_series(buf.as_slice()).unwrap();
        assert_eq!(series, back);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("saq_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("series.saq");
        let series = sample_series();
        save_series(&series, &path).unwrap();
        let back = load_series(&path).unwrap();
        assert_eq!(series, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn comments_and_blanks_tolerated() {
        let series = sample_series();
        let mut buf = Vec::new();
        write_series(&series, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let with_comments = text.replacen('\n', "\n# a comment\n\n", 1);
        let back = read_series(with_comments.as_bytes()).unwrap();
        assert_eq!(series, back);
    }

    #[test]
    fn corrupt_inputs_rejected() {
        assert!(read_series("".as_bytes()).is_err());
        assert!(read_series("not-a-header 1 2\n".as_bytes()).is_err());
        // Wrong count.
        let text = format!("{MAGIC} 49 3\n0 5 0 1 5 2 0.2 1\n");
        assert!(read_series(text.as_bytes()).is_err());
        // Bad numeric field.
        let text = format!("{MAGIC} 49 1\n0 5 0 1 5 zebra 0.2 1\n");
        let err = read_series(text.as_bytes()).unwrap_err().to_string();
        assert!(err.contains("zebra"), "{err}");
        // Trailing junk.
        let text = format!("{MAGIC} 49 1\n0 5 0 1 5 2 0.2 1 99\n");
        assert!(read_series(text.as_bytes()).is_err());
    }

    #[test]
    fn loaded_series_still_answers_queries() {
        let series = sample_series();
        let mut buf = Vec::new();
        write_series(&series, &mut buf).unwrap();
        let back = read_series(buf.as_slice()).unwrap();
        // Peak extraction works on the reloaded representation.
        let peaks = crate::features::PeakTable::extract(&back, 0.25);
        assert_eq!(peaks.len(), 2);
        // Evaluation too.
        assert!((back.value_at(8.0).unwrap() - series.value_at(8.0).unwrap()).abs() < 1e-12);
    }
}
