//! Persistence for linear representations.
//!
//! The paper's premise is that representations are "significantly more
//! space efficient than the original" and therefore *storable locally*;
//! this module lets a [`LinearSeries`] survive process restarts and ship
//! between sites without the raw data.
//!
//! Two formats are understood:
//!
//! * **v2 (binary, default)** — a thin shim over the durable storage
//!   codec ([`saq_durable::codec`]): one CRC-checksummed, length-prefixed
//!   frame whose body is `"SAQ2"` + original length + segment records in
//!   little-endian with IEEE-754 bit-exact floats. Corruption anywhere is
//!   detected by the checksum instead of silently mangling coefficients.
//! * **v1 (text, legacy)** — the original human-auditable form, one
//!   segment per line, still written by [`write_series_text`]:
//!
//!   ```text
//!   saq-linear-series v1 <original_len> <segment_count>
//!   <start_index> <end_index> <start_t> <start_v> <end_t> <end_v> <slope> <intercept>
//!   ...
//!   ```
//!
//! [`read_series`] sniffs the leading bytes and accepts either, so files
//! written before the durable engine existed keep loading; re-saving
//! migrates them to v2.

use crate::error::{Error, Result};
use crate::repr::{FunctionSeries, LinearSeries, Segment};
use saq_curves::Line;
use saq_durable::codec::{self, Cursor};
use saq_sequence::Point;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &str = "saq-linear-series v1";
const MAGIC_V2: &[u8; 4] = b"SAQ2";

/// Writes a linear series in the v2 binary format (one checksummed
/// frame over the durable codec).
pub fn write_series<W: Write>(series: &LinearSeries, out: W) -> Result<()> {
    let mut w = BufWriter::new(out);
    w.write_all(&encode_series(series)).map_err(io_err)?;
    w.flush().map_err(io_err)
}

/// Encodes a linear series as v2 bytes (the exact content
/// [`write_series`] emits).
pub fn encode_series(series: &LinearSeries) -> Vec<u8> {
    let mut body = Vec::with_capacity(8 + 12 + series.segment_count() * 64);
    body.extend_from_slice(MAGIC_V2);
    codec::put_u64(&mut body, series.original_len() as u64);
    codec::put_u32(&mut body, series.segment_count() as u32);
    for seg in series.segments() {
        codec::put_u64(&mut body, seg.start_index as u64);
        codec::put_u64(&mut body, seg.end_index as u64);
        codec::put_f64(&mut body, seg.start.t);
        codec::put_f64(&mut body, seg.start.v);
        codec::put_f64(&mut body, seg.end.t);
        codec::put_f64(&mut body, seg.end.v);
        codec::put_f64(&mut body, seg.curve.slope);
        codec::put_f64(&mut body, seg.curve.intercept);
    }
    codec::frame(&body)
}

/// Writes a linear series in the legacy v1 text format (one segment per
/// line, `#`-comments tolerated on read).
pub fn write_series_text<W: Write>(series: &LinearSeries, out: W) -> Result<()> {
    let mut w = BufWriter::new(out);
    writeln!(w, "{MAGIC} {} {}", series.original_len(), series.segment_count()).map_err(io_err)?;
    for seg in series.segments() {
        writeln!(
            w,
            "{} {} {} {} {} {} {} {}",
            seg.start_index,
            seg.end_index,
            seg.start.t,
            seg.start.v,
            seg.end.t,
            seg.end.v,
            seg.curve.slope,
            seg.curve.intercept
        )
        .map_err(io_err)?;
    }
    w.flush().map_err(io_err)
}

/// Reads a linear series, sniffing the format: the v1 text magic (even
/// after leading blank/comment lines) selects the legacy parser,
/// anything else is decoded as a v2 frame.
pub fn read_series<R: Read>(input: R) -> Result<LinearSeries> {
    let mut bytes = Vec::new();
    BufReader::new(input).read_to_end(&mut bytes).map_err(io_err)?;
    if looks_like_text(&bytes) {
        read_series_text(bytes.as_slice())
    } else {
        decode_series(&bytes)
    }
}

/// Decodes v2 bytes back into a series.
pub fn decode_series(bytes: &[u8]) -> Result<LinearSeries> {
    let body = codec::read_single_frame(bytes, "linear series file")?;
    let mut c = Cursor::new(body, "linear series");
    let magic = [c.get_u8()?, c.get_u8()?, c.get_u8()?, c.get_u8()?];
    if &magic != MAGIC_V2 {
        return Err(Error::Storage(saq_durable::Error::corrupt(
            "linear series: bad v2 magic".to_string(),
        )));
    }
    let original_len = c.get_u64()? as usize;
    let segment_count = c.get_u32()? as usize;
    let mut segments = Vec::with_capacity(segment_count.min(body.len() / 64 + 1));
    for _ in 0..segment_count {
        let start_index = c.get_u64()? as usize;
        let end_index = c.get_u64()? as usize;
        let start = Point::new(c.get_f64()?, c.get_f64()?);
        let end = Point::new(c.get_f64()?, c.get_f64()?);
        let curve = Line::new(c.get_f64()?, c.get_f64()?);
        segments.push(Segment { start_index, end_index, start, end, curve });
    }
    c.finish()?;
    FunctionSeries::from_segments(segments, original_len)
}

/// Whether the file starts (after blank/comment lines) with the v1 text
/// header.
fn looks_like_text(bytes: &[u8]) -> bool {
    let mut rest = bytes;
    loop {
        let line_end = rest.iter().position(|&b| b == b'\n').map_or(rest.len(), |i| i + 1);
        let (line, tail) = rest.split_at(line_end);
        let trimmed = line.iter().position(|b| !b.is_ascii_whitespace()).map(|i| &line[i..]);
        match trimmed {
            None => {}
            Some(line) if line.starts_with(b"#") => {}
            Some(line) => return line.starts_with(MAGIC.as_bytes()),
        }
        if tail.is_empty() {
            return false;
        }
        rest = tail;
    }
}

/// Reads the legacy v1 text format.
pub fn read_series_text<R: Read>(input: R) -> Result<LinearSeries> {
    let reader = BufReader::new(input);
    let mut lines = reader.lines().enumerate().filter_map(|(no, l)| match l {
        Ok(text) => {
            let trimmed = text.trim().to_string();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                None
            } else {
                Some(Ok((no + 1, trimmed)))
            }
        }
        Err(e) => Some(Err(Error::Sequence(saq_sequence::Error::Io(e)))),
    });

    let (_, header) = lines.next().ok_or_else(|| bad(0, "empty representation file"))??;
    let rest = header.strip_prefix(MAGIC).ok_or_else(|| bad(1, "missing or unsupported header"))?;
    let mut head_fields = rest.split_whitespace();
    let original_len: usize = parse_field(head_fields.next(), 1, "original length")?;
    let segment_count: usize = parse_field(head_fields.next(), 1, "segment count")?;

    let mut segments = Vec::with_capacity(segment_count);
    for item in lines {
        let (lineno, text) = item?;
        let mut f = text.split_whitespace();
        let start_index: usize = parse_field(f.next(), lineno, "start index")?;
        let end_index: usize = parse_field(f.next(), lineno, "end index")?;
        let st: f64 = parse_field(f.next(), lineno, "start t")?;
        let sv: f64 = parse_field(f.next(), lineno, "start v")?;
        let et: f64 = parse_field(f.next(), lineno, "end t")?;
        let ev: f64 = parse_field(f.next(), lineno, "end v")?;
        let slope: f64 = parse_field(f.next(), lineno, "slope")?;
        let intercept: f64 = parse_field(f.next(), lineno, "intercept")?;
        if f.next().is_some() {
            return Err(bad(lineno, "trailing fields"));
        }
        segments.push(Segment {
            start_index,
            end_index,
            start: Point::new(st, sv),
            end: Point::new(et, ev),
            curve: Line::new(slope, intercept),
        });
    }
    if segments.len() != segment_count {
        return Err(bad(
            0,
            &format!("expected {segment_count} segments, found {}", segments.len()),
        ));
    }
    FunctionSeries::from_segments(segments, original_len)
}

/// Saves to a file path (v2 binary).
pub fn save_series<P: AsRef<Path>>(series: &LinearSeries, path: P) -> Result<()> {
    let file = std::fs::File::create(path).map_err(io_err)?;
    write_series(series, file)
}

/// Loads from a file path (either format).
pub fn load_series<P: AsRef<Path>>(path: P) -> Result<LinearSeries> {
    let file = std::fs::File::open(path).map_err(io_err)?;
    read_series(file)
}

fn io_err(e: std::io::Error) -> Error {
    Error::Sequence(saq_sequence::Error::Io(e))
}

fn bad(line: usize, message: &str) -> Error {
    Error::BadConfig(format!("representation file line {line}: {message}"))
}

fn parse_field<T: std::str::FromStr>(field: Option<&str>, line: usize, what: &str) -> Result<T> {
    let text = field.ok_or_else(|| bad(line, &format!("missing {what}")))?;
    text.parse().map_err(|_| bad(line, &format!("bad {what} `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brk::{Breaker, LinearInterpolationBreaker};
    use saq_curves::RegressionFitter;
    use saq_sequence::generators::{goalpost, GoalpostSpec};

    fn sample_series() -> LinearSeries {
        let log = goalpost(GoalpostSpec::default());
        let ranges = LinearInterpolationBreaker::new(1.0).break_ranges(&log);
        FunctionSeries::build(&log, &ranges, &RegressionFitter).unwrap()
    }

    #[test]
    fn roundtrip_through_memory() {
        let series = sample_series();
        let mut buf = Vec::new();
        write_series(&series, &mut buf).unwrap();
        let back = read_series(buf.as_slice()).unwrap();
        assert_eq!(series, back);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("saq_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("series.saq");
        let series = sample_series();
        save_series(&series, &path).unwrap();
        let back = load_series(&path).unwrap();
        assert_eq!(series, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn legacy_text_files_still_load() {
        let series = sample_series();
        let mut buf = Vec::new();
        write_series_text(&series, &mut buf).unwrap();
        // The sniffing reader migrates v1 transparently...
        let back = read_series(buf.as_slice()).unwrap();
        assert_eq!(series, back);
        // ...bit-exactly enough that re-saving as v2 round-trips.
        let v2 = encode_series(&back);
        assert_eq!(decode_series(&v2).unwrap(), back);
    }

    #[test]
    fn comments_and_blanks_tolerated() {
        let series = sample_series();
        let mut buf = Vec::new();
        write_series_text(&series, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let with_comments =
            format!("# preamble\n\n{}", text.replacen('\n', "\n# a comment\n\n", 1));
        let back = read_series(with_comments.as_bytes()).unwrap();
        assert_eq!(series, back);
    }

    #[test]
    fn corrupt_inputs_rejected() {
        assert!(read_series("".as_bytes()).is_err());
        assert!(read_series("not-a-header 1 2\n".as_bytes()).is_err());
        // Wrong count.
        let text = format!("{MAGIC} 49 3\n0 5 0 1 5 2 0.2 1\n");
        assert!(read_series(text.as_bytes()).is_err());
        // Bad numeric field.
        let text = format!("{MAGIC} 49 1\n0 5 0 1 5 zebra 0.2 1\n");
        let err = read_series(text.as_bytes()).unwrap_err().to_string();
        assert!(err.contains("zebra"), "{err}");
        // Trailing junk.
        let text = format!("{MAGIC} 49 1\n0 5 0 1 5 2 0.2 1 99\n");
        assert!(read_series(text.as_bytes()).is_err());
    }

    #[test]
    fn v2_corruption_is_caught_by_the_checksum() {
        let series = sample_series();
        let clean = encode_series(&series);
        // Every single-byte flip anywhere in the frame is detected.
        for at in [0, 4, 8, 9, clean.len() / 2, clean.len() - 1] {
            let mut bytes = clean.clone();
            bytes[at] ^= 0x40;
            assert!(read_series(bytes.as_slice()).is_err(), "flip at {at} accepted");
        }
        // Truncation too.
        assert!(read_series(&clean[..clean.len() - 3]).is_err());
        // And a valid frame with the wrong inner magic.
        let mut body = clean[8..].to_vec();
        body[0] = b'X';
        assert!(read_series(codec::frame(&body).as_slice()).is_err());
    }

    #[test]
    fn loaded_series_still_answers_queries() {
        let series = sample_series();
        let mut buf = Vec::new();
        write_series(&series, &mut buf).unwrap();
        let back = read_series(buf.as_slice()).unwrap();
        // Peak extraction works on the reloaded representation.
        let peaks = crate::features::PeakTable::extract(&back, 0.25);
        assert_eq!(peaks.len(), 2);
        // Evaluation too.
        assert!((back.value_at(8.0).unwrap() - series.value_at(8.0).unwrap()).abs() < 1e-12);
    }
}
