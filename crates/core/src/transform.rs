//! Feature-preserving transformations (§2.2).
//!
//! A generalized approximate query denotes a set `S` of sequences "closed
//! under any behavior-preserving transformations": translation in time and
//! amplitude, dilation and contraction (frequency changes), and combinations
//! thereof. These transformations generate the equivalence class a query
//! exemplar stands for; the experiments apply them to verify consistency of
//! breaking and closure of feature queries.

use crate::error::{Error, Result};
use saq_sequence::Sequence;

/// A feature-preserving transformation of sequences.
#[derive(Debug, Clone, PartialEq)]
pub enum Transform {
    /// Translation in time: `t ↦ t + dt`.
    TimeShift(f64),
    /// Translation in amplitude: `v ↦ v + dv`.
    AmplitudeShift(f64),
    /// Amplitude scaling: `v ↦ s·v` with `s > 0` (negative would invert
    /// peaks into valleys and is *not* feature preserving).
    AmplitudeScale(f64),
    /// Time dilation (`s > 1`) or contraction (`0 < s < 1`): `t ↦ s·t`.
    /// These are the frequency changes of §2.2's footnote.
    TimeDilate(f64),
    /// Composition, applied left to right.
    Compose(Vec<Transform>),
}

impl Transform {
    /// Applies the transformation.
    pub fn apply(&self, seq: &Sequence) -> Result<Sequence> {
        match self {
            Transform::TimeShift(dt) => {
                if !dt.is_finite() {
                    return Err(Error::BadConfig("non-finite time shift".into()));
                }
                Ok(seq.map_times(|t| t + dt)?)
            }
            Transform::AmplitudeShift(dv) => {
                if !dv.is_finite() {
                    return Err(Error::BadConfig("non-finite amplitude shift".into()));
                }
                Ok(seq.map_values(|v| v + dv)?)
            }
            Transform::AmplitudeScale(s) => {
                if !(s.is_finite() && *s > 0.0) {
                    return Err(Error::BadConfig(
                        "amplitude scale must be positive (negative scaling inverts features)"
                            .into(),
                    ));
                }
                Ok(seq.map_values(|v| s * v)?)
            }
            Transform::TimeDilate(s) => {
                if !(s.is_finite() && *s > 0.0) {
                    return Err(Error::BadConfig("time dilation must be positive".into()));
                }
                Ok(seq.map_times(|t| s * t)?)
            }
            Transform::Compose(list) => {
                let mut current = seq.clone();
                for t in list {
                    current = t.apply(&current)?;
                }
                Ok(current)
            }
        }
    }

    /// The inverse transformation (compositions invert in reverse order).
    pub fn inverse(&self) -> Transform {
        match self {
            Transform::TimeShift(dt) => Transform::TimeShift(-dt),
            Transform::AmplitudeShift(dv) => Transform::AmplitudeShift(-dv),
            Transform::AmplitudeScale(s) => Transform::AmplitudeScale(1.0 / s),
            Transform::TimeDilate(s) => Transform::TimeDilate(1.0 / s),
            Transform::Compose(list) => {
                Transform::Compose(list.iter().rev().map(Transform::inverse).collect())
            }
        }
    }

    /// Every [`Transform`] in this enum preserves the ordinal features
    /// (number of peaks, their order); provided for symmetry with the
    /// paper's taxonomy, where *deviations* (noise) are the transformations
    /// that are only approximately feature-preserving.
    pub fn is_feature_preserving(&self) -> bool {
        true
    }

    /// The five Fig. 5 variants: transformations that keep "two peaks" true
    /// while defeating value-based ±δ matching.
    pub fn figure5_suite() -> Vec<(&'static str, Transform)> {
        vec![
            ("amplitude shift", Transform::AmplitudeShift(2.5)),
            ("time shift", Transform::TimeShift(3.0)),
            ("amplitude scale", Transform::AmplitudeScale(1.8)),
            ("contraction", Transform::TimeDilate(0.6)),
            (
                "dilation + shift",
                Transform::Compose(vec![
                    Transform::TimeDilate(1.5),
                    Transform::AmplitudeShift(-1.0),
                ]),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::DEFAULT_THETA;
    use crate::brk::{Breaker, LinearInterpolationBreaker};
    use crate::features::PeakTable;
    use crate::repr::FunctionSeries;
    use saq_curves::RegressionFitter;
    use saq_sequence::generators::{goalpost, GoalpostSpec};

    fn peak_count(seq: &Sequence) -> usize {
        let ranges = LinearInterpolationBreaker::new(1.0).break_ranges(seq);
        let series = FunctionSeries::build(seq, &ranges, &RegressionFitter).unwrap();
        PeakTable::extract(&series, DEFAULT_THETA).len()
    }

    #[test]
    fn shifts_and_scales() {
        let s = Sequence::from_samples(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(Transform::TimeShift(10.0).apply(&s).unwrap().times(), vec![10.0, 11.0, 12.0]);
        assert_eq!(
            Transform::AmplitudeShift(-1.0).apply(&s).unwrap().values(),
            vec![0.0, 1.0, 2.0]
        );
        assert_eq!(Transform::AmplitudeScale(2.0).apply(&s).unwrap().values(), vec![2.0, 4.0, 6.0]);
        assert_eq!(Transform::TimeDilate(0.5).apply(&s).unwrap().times(), vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn composition_applies_in_order() {
        let s = Sequence::from_samples(&[1.0]).unwrap();
        let t = Transform::Compose(vec![
            Transform::AmplitudeScale(3.0),
            Transform::AmplitudeShift(1.0),
        ]);
        // (1 * 3) + 1 = 4, not (1 + 1) * 3.
        assert_eq!(t.apply(&s).unwrap().values(), vec![4.0]);
    }

    #[test]
    fn inverses_cancel() {
        let s = Sequence::from_samples(&[1.0, 5.0, 2.0]).unwrap();
        for t in [
            Transform::TimeShift(7.0),
            Transform::AmplitudeShift(-3.0),
            Transform::AmplitudeScale(2.5),
            Transform::TimeDilate(3.0),
            Transform::Compose(vec![Transform::TimeDilate(2.0), Transform::AmplitudeShift(4.0)]),
        ] {
            let roundtrip = t.inverse().apply(&t.apply(&s).unwrap()).unwrap();
            for (a, b) in s.points().iter().zip(roundtrip.points()) {
                assert!((a.t - b.t).abs() < 1e-9 && (a.v - b.v).abs() < 1e-9, "{t:?}");
            }
        }
    }

    #[test]
    fn invalid_parameters_rejected() {
        let s = Sequence::from_samples(&[1.0]).unwrap();
        assert!(Transform::AmplitudeScale(-1.0).apply(&s).is_err());
        assert!(Transform::AmplitudeScale(0.0).apply(&s).is_err());
        assert!(Transform::TimeDilate(0.0).apply(&s).is_err());
        assert!(Transform::TimeShift(f64::NAN).apply(&s).is_err());
    }

    #[test]
    fn figure5_suite_preserves_two_peaks() {
        // The heart of §2: every Fig. 5 transformation keeps the goal-post
        // property "exactly two peaks".
        let log = goalpost(GoalpostSpec::default());
        assert_eq!(peak_count(&log), 2);
        for (name, t) in Transform::figure5_suite() {
            let transformed = t.apply(&log).unwrap();
            assert_eq!(peak_count(&transformed), 2, "transform `{name}` broke the feature");
            assert!(t.is_feature_preserving());
        }
    }
}
