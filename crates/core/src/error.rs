use crate::lang::saql::SaqlError;
use crate::request::SnapshotRef;
use std::fmt;

/// Errors from breaking, representation, querying, and serving.
///
/// One enum covers the whole stack so every layer — engines, the SAQL
/// parser, and the `saqd` wire protocol — reports failures through a
/// single type. Each variant has a stable numeric [`Error::code`] that
/// survives a trip over the network: a server serializes `code` +
/// [`Display`](fmt::Display) text, and the client rebuilds an
/// [`Error::Remote`] carrying both, so no diagnostic detail (including
/// SAQL caret renderings) is flattened into ad-hoc strings along the way.
#[derive(Debug)]
pub enum Error {
    /// An underlying sequence operation failed.
    Sequence(saq_sequence::Error),
    /// An underlying curve fit failed.
    Curve(saq_curves::Error),
    /// A pattern failed to parse or compile.
    Pattern(saq_pattern::Error),
    /// The requested sequence id is not in the store.
    UnknownSequence {
        /// The id that was looked up.
        id: u64,
    },
    /// Breaking produced no segments (empty input).
    EmptyInput,
    /// A configuration value was invalid.
    BadConfig(String),
    /// A SAQL query failed to parse. Keeps the structured diagnostic and
    /// the original query text, so `Display` renders the caret underline
    /// exactly as the REPL shows it.
    Saql {
        /// The structured parse diagnostic (message + span).
        error: SaqlError,
        /// The query text the span points into.
        query: String,
    },
    /// A request pinned to one snapshot reached an engine positioned at
    /// another — the optimistic-concurrency failure a client retries
    /// against a fresh pin.
    SnapshotMismatch {
        /// The snapshot the request demanded.
        requested: SnapshotRef,
        /// The snapshot the engine is actually serving.
        current: SnapshotRef,
    },
    /// A malformed wire-protocol frame or payload.
    Protocol(String),
    /// A socket or filesystem operation failed.
    Io(std::io::Error),
    /// The durable storage layer failed or found corrupt bytes.
    Storage(saq_durable::Error),
    /// An error reported by a remote `saqd` server: the original error's
    /// stable code plus its full rendered message.
    Remote {
        /// The remote error's [`Error::code`].
        code: u16,
        /// The remote error's rendered `Display` text.
        message: String,
    },
}

impl Error {
    /// The stable numeric code for this error, as carried by the `saqd`
    /// wire protocol. Codes identify the *kind* of failure and never
    /// change meaning across releases; [`Error::Remote`] reports the code
    /// of the server-side error it wraps.
    pub fn code(&self) -> u16 {
        match self {
            Error::Sequence(_) => 1,
            Error::Curve(_) => 2,
            Error::Pattern(_) => 3,
            Error::UnknownSequence { .. } => 4,
            Error::EmptyInput => 5,
            Error::BadConfig(_) => 6,
            Error::Saql { .. } => 7,
            Error::SnapshotMismatch { .. } => 8,
            Error::Protocol(_) => 9,
            Error::Io(_) => 10,
            Error::Storage(_) => 11,
            Error::Remote { code, .. } => *code,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Sequence(e) => write!(f, "sequence error: {e}"),
            Error::Curve(e) => write!(f, "curve error: {e}"),
            Error::Pattern(e) => write!(f, "pattern error: {e}"),
            Error::UnknownSequence { id } => write!(f, "unknown sequence id {id}"),
            Error::EmptyInput => write!(f, "empty input sequence"),
            Error::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
            Error::Saql { error, query } => write!(f, "{}", error.render(query)),
            Error::SnapshotMismatch { requested, current } => {
                write!(f, "snapshot mismatch: request pinned {requested}, engine is at {current}")
            }
            Error::Protocol(msg) => write!(f, "protocol error: {msg}"),
            Error::Io(e) => write!(f, "io error: {e}"),
            Error::Storage(e) => write!(f, "storage error: {e}"),
            Error::Remote { code, message } => write!(f, "server error [{code}]: {message}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Sequence(e) => Some(e),
            Error::Curve(e) => Some(e),
            Error::Pattern(e) => Some(e),
            Error::Io(e) => Some(e),
            Error::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<saq_sequence::Error> for Error {
    fn from(e: saq_sequence::Error) -> Self {
        Error::Sequence(e)
    }
}

impl From<saq_curves::Error> for Error {
    fn from(e: saq_curves::Error) -> Self {
        Error::Curve(e)
    }
}

impl From<saq_pattern::Error> for Error {
    fn from(e: saq_pattern::Error) -> Self {
        Error::Pattern(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl From<saq_durable::Error> for Error {
    fn from(e: saq_durable::Error) -> Self {
        // Host I/O failures keep their existing code; only validation
        // failures (corruption, bad keys) are storage errors proper.
        match e {
            saq_durable::Error::Io(io) => Error::Io(io),
            other => Error::Storage(other),
        }
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let e: Error = saq_curves::Error::SingularSystem.into();
        assert!(std::error::Error::source(&e).is_some());
        let e: Error = saq_pattern::Error::UnknownSymbol { ch: 'x' }.into();
        assert!(e.to_string().contains("pattern"));
        assert!(std::error::Error::source(&Error::EmptyInput).is_none());
        assert!(Error::UnknownSequence { id: 7 }.to_string().contains('7'));
        let e: Error = std::io::Error::other("boom").into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("boom"));
        // Durable-layer io failures collapse into the io code; true
        // corruption keeps its own.
        let e: Error = saq_durable::Error::Io(std::io::Error::other("spindle")).into();
        assert_eq!(e.code(), 10);
        let e: Error = saq_durable::Error::corrupt("torn wal").into();
        assert_eq!(e.code(), 11);
        assert!(e.to_string().contains("torn wal"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn codes_are_stable_and_distinct() {
        let samples = [
            (Error::Sequence(saq_sequence::Error::TooShort { required: 2, actual: 0 }), 1),
            (Error::Curve(saq_curves::Error::SingularSystem), 2),
            (Error::Pattern(saq_pattern::Error::UnknownSymbol { ch: 'x' }), 3),
            (Error::UnknownSequence { id: 7 }, 4),
            (Error::EmptyInput, 5),
            (Error::BadConfig("x".into()), 6),
            (
                Error::SnapshotMismatch {
                    requested: SnapshotRef::new(1, 2),
                    current: SnapshotRef::new(1, 3),
                },
                8,
            ),
            (Error::Protocol("short frame".into()), 9),
            (Error::Io(std::io::Error::other("x")), 10),
            (Error::Storage(saq_durable::Error::corrupt("bad crc")), 11),
        ];
        for (err, code) in samples {
            assert_eq!(err.code(), code, "{err}");
        }
        // A remote error relays the embedded server-side code untouched.
        assert_eq!(Error::Remote { code: 7, message: "x".into() }.code(), 7);
    }

    #[test]
    fn saql_display_preserves_the_caret_diagnostic() {
        let text = "peaks 2";
        let Err(e) = crate::lang::saql::parse(text) else {
            panic!("`peaks 2` must not parse");
        };
        assert_eq!(e.code(), 7);
        let shown = e.to_string();
        assert!(shown.contains('^'), "caret underline survives Display: {shown}");
        assert!(shown.contains("peaks 2"), "offending line survives Display: {shown}");
    }

    #[test]
    fn snapshot_mismatch_names_both_generations() {
        let e = Error::SnapshotMismatch {
            requested: SnapshotRef::new(9, 4),
            current: SnapshotRef::new(9, 6),
        };
        let shown = e.to_string();
        assert!(shown.contains("9.4") && shown.contains("9.6"), "{shown}");
    }
}
