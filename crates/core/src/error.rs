use std::fmt;

/// Errors from breaking, representation and querying.
#[derive(Debug)]
pub enum Error {
    /// An underlying sequence operation failed.
    Sequence(saq_sequence::Error),
    /// An underlying curve fit failed.
    Curve(saq_curves::Error),
    /// A pattern failed to parse or compile.
    Pattern(saq_pattern::Error),
    /// The requested sequence id is not in the store.
    UnknownSequence {
        /// The id that was looked up.
        id: u64,
    },
    /// Breaking produced no segments (empty input).
    EmptyInput,
    /// A configuration value was invalid.
    BadConfig(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Sequence(e) => write!(f, "sequence error: {e}"),
            Error::Curve(e) => write!(f, "curve error: {e}"),
            Error::Pattern(e) => write!(f, "pattern error: {e}"),
            Error::UnknownSequence { id } => write!(f, "unknown sequence id {id}"),
            Error::EmptyInput => write!(f, "empty input sequence"),
            Error::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Sequence(e) => Some(e),
            Error::Curve(e) => Some(e),
            Error::Pattern(e) => Some(e),
            _ => None,
        }
    }
}

impl From<saq_sequence::Error> for Error {
    fn from(e: saq_sequence::Error) -> Self {
        Error::Sequence(e)
    }
}

impl From<saq_curves::Error> for Error {
    fn from(e: saq_curves::Error) -> Self {
        Error::Curve(e)
    }
}

impl From<saq_pattern::Error> for Error {
    fn from(e: saq_pattern::Error) -> Self {
        Error::Pattern(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let e: Error = saq_curves::Error::SingularSystem.into();
        assert!(std::error::Error::source(&e).is_some());
        let e: Error = saq_pattern::Error::UnknownSymbol { ch: 'x' }.into();
        assert!(e.to_string().contains("pattern"));
        assert!(std::error::Error::source(&Error::EmptyInput).is_none());
        assert!(Error::UnknownSequence { id: 7 }.to_string().contains('7'));
    }
}
