//! # saq-core
//!
//! The paper's primary contribution (Shatkay & Zdonik, ICDE 1996): breaking
//! large data sequences into meaningful subsequences, representing each by a
//! well-behaved real-valued function, and answering *generalized approximate
//! queries* over the resulting compact representation.
//!
//! The crate is organized around the paper's pipeline:
//!
//! 1. **Breaking** ([`brk`]) — the offline recursive curve-fitting template
//!    of Fig. 8 (instantiated with endpoint interpolation, least-squares
//!    regression, or Bézier curves), an online sliding-window breaker, and a
//!    dynamic-programming cost-minimizing breaker used as the expensive
//!    baseline.
//! 2. **Representation** ([`repr`]) — [`FunctionSeries`]: the sequence of
//!    fitted functions with per-segment start/end points, reconstruction and
//!    compression accounting.
//! 3. **Slope alphabet** ([`alphabet`]) — quantizing segment slopes into
//!    `{−1, 0, +1}` (rendered `d`, `f`, `u`), the paper's index alphabet.
//! 4. **Features** ([`features`]) — peaks (Table 1's per-peak rising and
//!    descending functions), inter-peak intervals, steepness.
//! 5. **Transformations** ([`transform`]) — the feature-preserving
//!    transformations that generalized approximate queries are closed under.
//! 6. **Queries** ([`query`], [`store`]) — the query engine over a store of
//!    representations with slope-pattern and inverted-file indexes.
//! 7. **Algebra** ([`algebra`]) — the composable query algebra
//!    ([`QueryExpr`]: `And`/`Or`/`Not`/`Limit`/`TopK` over predicate
//!    leaves), the [`Planner`] that pushes indexable leaves into
//!    `saq-index` structures, and the [`QueryEngine`] trait shared by the
//!    sequential and sharded execution backends.
//! 8. **Languages** ([`lang`]) — SAQL ([`lang::saql`]), the textual
//!    surface for the full algebra (grammar in `docs/SAQL.md`), and the
//!    original conjunctive clause language as a shim over its subset.
//! 9. **Streaming** ([`streaming`], [`subscribe`]) — incremental
//!    re-representation for live appends (splicing the online breaker's
//!    stable prefix) and standing queries whose result-set deltas are
//!    pushed after every mutation wave.
//!
//! ## Quick start
//!
//! ```
//! use saq_core::{brk::LinearInterpolationBreaker, repr::FunctionSeries, Breaker};
//! use saq_curves::RegressionFitter;
//! use saq_sequence::generators::{goalpost, GoalpostSpec};
//!
//! let log = goalpost(GoalpostSpec::default());
//! let breaker = LinearInterpolationBreaker::new(1.0);
//! let ranges = breaker.break_ranges(&log);
//! let series = FunctionSeries::build(&log, &ranges, &RegressionFitter).unwrap();
//! assert!(series.segment_count() >= 4); // up, down, up, down at least
//! assert!(series.compression().ratio() > 1.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod algebra;
pub mod alphabet;
pub mod brk;
mod error;
pub mod features;
pub mod lang;
pub mod multi;
pub mod persist;
pub mod query;
pub mod repr;
pub mod request;
pub mod store;
pub mod streaming;
pub mod subscribe;
pub mod transform;

pub use algebra::{
    AccessPath, ExecStats, IndexCaps, MatchSet, MatchTier, PhysicalPlan, PlanStats, Planner, Pred,
    PreparedPred, QueryEngine, QueryExpr, StoreEngine,
};
pub use alphabet::{slope_alphabet, SlopeSymbol};
pub use brk::Breaker;
pub use error::{Error, Result};
pub use features::{Peak, PeakTable};
pub use lang::saql::{parse as parse_saql, parse_and_plan, print as print_saql, SaqlError, Span};
pub use lang::{parse_query, run_query, ParsedQuery};
pub use multi::{Family, MultiSeries};
pub use persist::{load_series, read_series, save_series, write_series, write_series_text};
pub use query::{ApproximateMatch, PreparedQuery, QueryOutcome, QuerySpec, SequenceMatch};
pub use repr::{CompressionReport, FunctionSeries, LinearSeries, Segment};
pub use request::{QueryBody, QueryRequest, QueryResponse, SnapshotRef};
pub use store::{BreakerKind, SequenceStore, SharedStore, StoreConfig, StoreSnapshot, StoredEntry};
pub use streaming::{append_entry, extend_entry, SpliceReport};
pub use subscribe::{Delta, PumpCounters, SubscriptionId, SubscriptionRegistry};
pub use transform::Transform;
