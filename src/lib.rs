//! # saq — Sequence Approximate Queries
//!
//! A Rust reproduction of **Shatkay & Zdonik, "Approximate Queries and
//! Representations for Large Data Sequences" (ICDE 1996)**: breaking large
//! data sequences into meaningful subsequences, representing each by a
//! real-valued function, and answering *generalized approximate queries*
//! (shape and feature queries closed under feature-preserving
//! transformations) over the compact representation.
//!
//! This crate is a facade re-exporting the workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`sequence`] | `saq-sequence` | data model, statistics, generators, CSV I/O |
//! | [`curves`] | `saq-curves` | lines, polynomials, Bézier, sinusoids + fitting |
//! | [`preprocess`] | `saq-preprocess` | filtering, normalization, wavelets |
//! | [`pattern`] | `saq-pattern` | regex engine over slope alphabets |
//! | [`index`] | `saq-index` | B+tree, inverted file, pattern index |
//! | [`core`] | `saq-core` | breaking, representation, features, queries, query algebra + planner |
//! | [`ecg`] | `saq-ecg` | ECG synthesis and R–R interval workloads |
//! | [`baseline`] | `saq-baseline` | value-band and DFT/F-index comparators |
//! | [`durable`] | `saq-durable` | write-ahead log + immutable B-tree segments behind a `Backend` trait |
//! | [`archive`] | `saq-archive` | simulated archival storage tiers, durably backed |
//! | [`engine`] | `saq-engine` | sharded parallel batch queries over the archive |
//! | [`server`] | `saq-server` | `saqd`: networked SAQL service with batch coalescing |
//!
//! ## Quickstart
//!
//! ```
//! use saq::core::{store::{SequenceStore, StoreConfig}, query::{evaluate, QuerySpec}};
//! use saq::sequence::generators::{goalpost, GoalpostSpec};
//!
//! // Ingest a 24-hour temperature log; query for goal-post fever.
//! let mut store = SequenceStore::new(StoreConfig::default()).unwrap();
//! let id = store.insert(&goalpost(GoalpostSpec::default())).unwrap();
//! let out = evaluate(&store, &QuerySpec::Shape {
//!     pattern: "0* 1+ (-1)+ 0* 1+ (-1)+ 0*".into(),
//! }).unwrap();
//! assert_eq!(out.exact, vec![id]);
//! ```
//!
//! Queries compose: see [`core::algebra`] for the `And`/`Or`/`Not`/
//! `Limit`/`TopK` expression algebra, the planner that pushes indexable
//! leaves into [`index`] structures, and the `QueryEngine` trait shared
//! by the sequential and sharded execution backends.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use saq_archive as archive;
pub use saq_baseline as baseline;
pub use saq_core as core;
pub use saq_curves as curves;
pub use saq_durable as durable;
pub use saq_ecg as ecg;
pub use saq_engine as engine;
pub use saq_index as index;
pub use saq_pattern as pattern;
pub use saq_preprocess as preprocess;
pub use saq_sequence as sequence;
pub use saq_server as server;
