#!/usr/bin/env python3
"""Bench-trend gate: diff a freshly generated bench_harness snapshot
against the checked-in previous one and fail on a >25% regression in
WAL replay throughput (per corpus size), any kernel's measured
speedup over its scalar baseline, or a streaming feed's splice/pump
win over the batch re-run. Sections missing from the previous
snapshot (older schema) are skipped, so the gate tightens as the
trajectory grows. Set SAQ_BENCH_ALLOW_REGRESSION=1 to record a known
slowdown instead of failing (e.g. a deliberate trade-off, or a noisy
shared runner).

Usage: bench_trend.py <previous.json> <fresh.json>
"""

import json
import os
import sys

TOLERANCE = 0.25


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    prev_path, now_path = sys.argv[1], sys.argv[2]
    with open(prev_path) as f:
        prev = json.load(f)
    with open(now_path) as f:
        now = json.load(f)

    failures = []

    prev_recovery = {r["sequences"]: r for r in prev.get("recovery", [])}
    for r in now.get("recovery", []):
        p = prev_recovery.get(r["sequences"])
        if p is None:
            continue
        old, new = p["replay_records_per_sec"], r["replay_records_per_sec"]
        if new < old * (1 - TOLERANCE):
            failures.append(
                f"replay_records_per_sec (n={r['sequences']}): {old:.0f} -> {new:.0f} rec/s"
            )

    prev_kernels = {k["name"]: k for k in prev.get("kernels", [])}
    for k in now.get("kernels", []):
        p = prev_kernels.get(k["name"])
        if p is None:
            continue
        if k["speedup"] < p["speedup"] * (1 - TOLERANCE):
            failures.append(
                f"kernel {k['name']}: speedup {p['speedup']:.2f}x -> {k['speedup']:.2f}x"
            )

    prev_streaming = {s["name"]: s for s in prev.get("streaming", [])}
    for s in now.get("streaming", []):
        p = prev_streaming.get(s["name"])
        if p is None:
            continue
        for metric in ("splice_speedup", "pump_speedup"):
            if s[metric] < p[metric] * (1 - TOLERANCE):
                failures.append(
                    f"streaming {s['name']}: {metric} {p[metric]:.2f}x -> {s[metric]:.2f}x"
                )

    if failures:
        print(f"bench-trend regressions (>{TOLERANCE:.0%} vs {prev_path}):")
        for f in failures:
            print(f"  {f}")
        if os.environ.get("SAQ_BENCH_ALLOW_REGRESSION") == "1":
            print("SAQ_BENCH_ALLOW_REGRESSION=1 set; recording the regression and continuing")
            return 0
        print("set SAQ_BENCH_ALLOW_REGRESSION=1 to override a known slowdown")
        return 1

    print(f"bench-trend: no regressions vs {prev_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
