//! The cardiology workload of §5.2: break digitized ECGs with ε=10, build
//! Table 1 (per-peak rising/descending functions), derive R–R interval
//! sequences, index them in an inverted file (Fig. 10) and answer
//! "find all ECGs with R–R intervals of length n ± ε".
//!
//! Run with `cargo run --example ecg_rr_query`.

use saq::ecg::corpus::{build_rr_index, rr_query};
use saq::ecg::synth::{synthesize, EcgSpec};
use saq::ecg::{analyze, EcgCorpus};

fn main() {
    // Two segments standing in for Fig. 9's top (rr ~ 149) and bottom
    // (rr ~ 136) ECGs.
    let top = synthesize(EcgSpec { rr: 149.0, ..EcgSpec::default() });
    let bottom = synthesize(EcgSpec { rr: 136.0, rr_jitter: 0.8, seed: 9, ..EcgSpec::default() });

    let top_report = analyze(&top, 10.0).unwrap();
    let bottom_report = analyze(&bottom, 10.0).unwrap();

    println!("== Fig. 9 style analysis (eps = 10) ==\n");
    for (name, report) in [("top ECG", &top_report), ("bottom ECG", &bottom_report)] {
        let c = report.series.compression();
        println!(
            "{name}: {} samples -> {} segments (compression {:.1}x), {} R peaks",
            c.original_points,
            c.segments,
            c.ratio(),
            report.r_peaks.len()
        );
    }

    println!("\n== Table 1: peaks information for the top ECG ==\n");
    print!("{}", top_report.table1());

    println!("\nR-R interval sequences:");
    println!("  top:    {:?}", top_report.rr_buckets());
    println!("  bottom: {:?}", bottom_report.rr_buckets());

    // Build the Fig. 10 inverted file over a small library of ECGs.
    let corpus = EcgCorpus {
        entries: vec![(1, top.clone(), top_report), (2, bottom.clone(), bottom_report)],
    };
    let index = build_rr_index(&corpus);

    println!("\n== Inverted-file R-R query (Fig. 10) ==\n");
    for (n, eps) in [(136, 3), (149, 3), (120, 5)] {
        let hits = rr_query(&index, n, eps);
        println!("R-R interval {n} +- {eps}: matching ECG ids {hits:?}");
    }
}
