//! The stock-market motivation of §1: "in a stock market database we look
//! at rises and drops of stock values" — shape queries over price series,
//! independent of absolute price levels.
//!
//! Run with `cargo run --example stock_trends`.

use saq::core::alphabet::parse_slope_pattern;
use saq::core::store::{SequenceStore, StoreConfig};
use saq::preprocess::{moving_average, Pipeline, Stage};
use saq::sequence::generators::stock_series;

fn main() {
    // A year of daily closes for a handful of tickers (synthetic walks with
    // different drifts/volatilities).
    let tickers = [
        ("UPUP", stock_series(250, 80.0, 0.8, 0.35, 11)), // strong uptrend
        ("DIPS", stock_series(250, 120.0, 1.4, -0.25, 22)), // decline
        ("CHOP", stock_series(250, 100.0, 2.2, 0.0, 33)), // volatile, flat
        ("SLOW", stock_series(250, 60.0, 0.5, 0.05, 44)), // quiet drift
    ];

    // Smooth a little before breaking (the paper's pre-breaking filtering),
    // then ingest with a tolerance scaled to price units.
    let pipeline = Pipeline::new().then(Stage::MovingAverage(2));
    let mut store =
        SequenceStore::new(StoreConfig { epsilon: 4.0, ..StoreConfig::default() }).unwrap();

    let mut ids = Vec::new();
    for (name, series) in &tickers {
        let smoothed = pipeline.apply(series);
        let id = store.insert(&smoothed).unwrap();
        ids.push((id, *name));
        let entry = store.get(id).unwrap();
        let c = entry.series.compression();
        println!(
            "{name}: {} closes -> {} trend segments (compression {:.1}x)",
            c.original_points,
            c.segments,
            c.ratio()
        );
    }

    // "Rally then correction": a rise run followed by a drop run, found as a
    // sub-pattern (not a full-chart match) via the pattern index.
    let rally_dip = parse_slope_pattern("1+ (-1)+").unwrap();
    println!("\nrally-then-correction occurrences (`1+ (-1)+` over trend slopes):");
    for hit in store.pattern_index().scan(&rally_dip) {
        let name = ids.iter().find(|(id, _)| *id == hit.sequence).unwrap().1;
        println!(
            "  {name}: {} occurrence(s) starting at segment(s) {:?}",
            hit.positions.len(),
            hit.positions
        );
    }

    // "Sustained uptrend": the whole (smoothed) chart is rises and flats only.
    let uptrend = parse_slope_pattern("(1|0)+").unwrap();
    let uptrend_ids = store.pattern_index().full_matches(&uptrend);
    let names: Vec<&str> =
        ids.iter().filter(|(id, _)| uptrend_ids.contains(id)).map(|(_, n)| *n).collect();
    println!("\nsustained uptrends (`(1|0)+` full-chart match): {names:?}");

    // Show the raw head of one series for flavour.
    let (_, first) = &tickers[0];
    let head = moving_average(first, 2);
    println!(
        "\nUPUP first five smoothed closes: {:?}",
        head.values()[..5].iter().map(|v| (v * 100.0).round() / 100.0).collect::<Vec<_>>()
    );
}
