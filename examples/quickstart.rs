//! Quickstart: break a sequence, inspect its function-series representation,
//! and run a generalized approximate query.
//!
//! Run with `cargo run --example quickstart`.

use saq::core::alphabet::{series_symbols, symbols_to_string, DEFAULT_THETA};
use saq::core::brk::{Breaker, LinearInterpolationBreaker};
use saq::core::query::{evaluate, QuerySpec};
use saq::core::repr::FunctionSeries;
use saq::core::store::{SequenceStore, StoreConfig};
use saq::curves::RegressionFitter;
use saq::sequence::generators::{goalpost, GoalpostSpec};

fn main() {
    // A 24-hour temperature log with the goal-post fever pattern (Fig. 3).
    let log = goalpost(GoalpostSpec::default());
    println!("raw sequence: {} samples over {:.0} hours", log.len(), log.duration().unwrap());

    // 1. Break at behaviour changes (linear-interpolation instantiation of
    //    the Fig. 8 template, tolerance eps = 1 degree F).
    let breaker = LinearInterpolationBreaker::new(1.0);
    let ranges = breaker.break_ranges(&log);
    println!("broken into {} subsequences at eps = 1.0", ranges.len());

    // 2. Represent each subsequence by its regression line (Fig. 6 style).
    let series = FunctionSeries::build(&log, &ranges, &RegressionFitter).unwrap();
    println!("\nsegment | span (h)      | regression line");
    for (i, seg) in series.segments().iter().enumerate() {
        println!("{:>7} | [{:>4.1}, {:>4.1}] | {}", i, seg.start.t, seg.end.t, seg.curve.formula());
    }

    // 3. Compression accounting (§5.2).
    let report = series.compression();
    println!(
        "\ncompression: {} points -> {} segments ({} parameters), factor {:.1}x",
        report.original_points,
        report.segments,
        report.parameters,
        report.ratio()
    );

    // 4. The slope-sign string the pattern index sees (§4.4).
    let symbols = series_symbols(&series, DEFAULT_THETA);
    println!("slope symbols (theta = {DEFAULT_THETA}): {}", symbols_to_string(&symbols));

    // 5. Store it and ask the goal-post fever query.
    let mut store = SequenceStore::new(StoreConfig::default()).unwrap();
    let id = store.insert(&log).unwrap();
    let outcome =
        evaluate(&store, &QuerySpec::Shape { pattern: "0* 1+ (-1)+ 0* 1+ (-1)+ 0*".into() })
            .unwrap();
    println!("\ngoal-post query exact matches: {:?} (our log is id {id})", outcome.exact);
}
