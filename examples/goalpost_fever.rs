//! The goal-post fever scenario of §2.1/§4.4: a ward of patients with
//! 24-hour temperature logs; the physician asks for everyone whose fever
//! "peaks exactly twice within 24 hours".
//!
//! Run with `cargo run --example goalpost_fever`.

use saq::baseline::euclid::band_match;
use saq::core::query::{evaluate, QuerySpec};
use saq::core::store::{SequenceStore, StoreConfig};
use saq::sequence::generators::{goalpost, peaks, GoalpostSpec, PeaksSpec};
use saq::sequence::Sequence;

fn ward() -> Vec<(String, Sequence, usize)> {
    // Textbook goal-post fever.
    let mut patients = vec![(
        "alice (classic goal-post)".to_string(),
        goalpost(GoalpostSpec { noise: 0.15, seed: 1, ..GoalpostSpec::default() }),
        2,
    )];
    // Goal-post shifted later in the day and taller — same feature class.
    patients.push((
        "bob (shifted + taller)".to_string(),
        goalpost(GoalpostSpec {
            peak1: 10.0,
            peak2: 20.0,
            amplitude: 10.0,
            noise: 0.15,
            seed: 2,
            ..GoalpostSpec::default()
        }),
        2,
    ));
    // Contracted: both peaks in the morning.
    patients.push((
        "carol (contracted)".to_string(),
        goalpost(GoalpostSpec {
            peak1: 4.0,
            peak2: 9.5,
            width: 1.0,
            noise: 0.15,
            seed: 3,
            ..GoalpostSpec::default()
        }),
        2,
    ));
    // Single spike — not goal-post.
    patients.push((
        "dave (single spike)".to_string(),
        peaks(PeaksSpec { centers: vec![13.0], noise: 0.15, seed: 4, ..PeaksSpec::default() }),
        1,
    ));
    // Three peaks — not goal-post.
    patients.push((
        "erin (three peaks)".to_string(),
        peaks(PeaksSpec {
            centers: vec![5.0, 12.0, 19.0],
            noise: 0.15,
            seed: 5,
            ..PeaksSpec::default()
        }),
        3,
    ));
    // Healthy flat chart.
    patients.push((
        "frank (afebrile)".to_string(),
        peaks(PeaksSpec { centers: vec![], noise: 0.15, seed: 6, ..PeaksSpec::default() }),
        0,
    ));
    patients
}

fn main() {
    let patients = ward();
    let mut store = SequenceStore::new(StoreConfig::default()).unwrap();
    let mut names = Vec::new();
    for (name, log, _) in &patients {
        let id = store.insert(log).unwrap();
        names.push((id, name.clone()));
    }

    // The generalized approximate query: shape, not values.
    let outcome =
        evaluate(&store, &QuerySpec::Shape { pattern: "0* 1+ (-1)+ 0* 1+ (-1)+ 0*".into() })
            .unwrap();

    println!("goal-post fever query `0* 1+ (-1)+ 0* 1+ (-1)+ 0*`\n");
    println!("patient                      | true peaks | matched");
    for ((id, name), (_, _, true_peaks)) in names.iter().zip(&patients) {
        println!(
            "{:28} | {:>10} | {}",
            name,
            true_peaks,
            if outcome.exact.contains(id) { "YES" } else { "no" }
        );
    }

    // Contrast with the value-based notion of Fig. 1: Bob and Carol are the
    // same feature class as Alice but nowhere near her in value space.
    let alice = &patients[0].1;
    println!("\nvalue-based +-0.5F band matching against alice's chart (Fig. 1 semantics):");
    for (name, log, _) in &patients[1..3] {
        println!(
            "  {:26} within band: {}",
            name,
            if band_match(alice, log, 0.5) { "YES" } else { "no (false dismissal!)" }
        );
    }

    // Peak-count query with an approximation tolerance (±1 peak).
    let approx = evaluate(&store, &QuerySpec::PeakCount { count: 2, tolerance: 1 }).unwrap();
    println!("\npeak-count query (2 +- 1):");
    println!("  exact: {:?}", approx.exact);
    for m in &approx.approximate {
        let name = &names.iter().find(|(id, _)| *id == m.id).unwrap().1;
        println!("  approximate: {name} (off by {})", m.deviation);
    }

    // The same ward, asked through the textual query language (§6's future
    // work): conjunctive clauses with per-dimension tolerances.
    let text = r#"shape "0* 1+ (-1)+ 0* 1+ (-1)+ 0*" and steepness all >= 0.5"#;
    let lang_out = saq::core::run_query(&store, text).unwrap();
    println!("\nquery-language form:\n  {text}\n  exact matches: {:?}", lang_out.exact);
}
