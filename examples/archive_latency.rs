//! The §1 motivation scenario: raw sequences live on a remote tape archive
//! ("obtaining raw seismic data can take several days"); compact
//! function-series representations live locally and answer feature queries
//! without touching the archive.
//!
//! Run with `cargo run --example archive_latency`.

use saq::archive::{Medium, TieredStore};
use saq::core::query::QuerySpec;
use saq::core::store::StoreConfig;
use saq::sequence::generators::{random_walk, seismic_burst};
use saq::sequence::Sequence;

fn station_data() -> Vec<Sequence> {
    // 40 seismic station traces; a quarter contain a vigorous event.
    let mut traces = Vec::new();
    for i in 0..40u64 {
        if i % 4 == 0 {
            traces.push(seismic_burst(2_000, 700 + (i as usize * 13) % 600, 120, 0.05, 12.0, i));
        } else {
            traces.push(random_walk(2_000, 0.0, 0.05, 1_000 + i));
        }
    }
    traces
}

fn main() {
    let mut tiered = TieredStore::new(
        StoreConfig { epsilon: 0.8, ..StoreConfig::default() },
        Medium::memory(),
        Medium::remote_tape(),
    )
    .unwrap();
    for trace in station_data() {
        tiered.insert(&trace).unwrap();
    }

    let report = tiered.local().total_compression();
    println!(
        "archived {} traces ({} raw samples); local representation: {} parameters ({:.1}x smaller)",
        tiered.archive().len(),
        report.original_points,
        report.parameters,
        report.ratio()
    );

    // "Sudden vigorous seismic activity": at least one steep peak.
    let query = QuerySpec::HasSteepPeak { steepness: 2.0, slack: 0.0 };
    let (outcome, local_cost) = tiered.query_local(&query).unwrap();
    println!(
        "\nquery `any peak steeper than 2.0` answered locally in {:.6} simulated seconds",
        local_cost
    );
    println!("matching stations: {:?}", outcome.exact);

    // The pre-representation workflow: fetch everything from tape and scan.
    let scan_cost = tiered.full_archive_scan_cost();
    println!(
        "\nfetching all raw traces from the remote tape would take {:.0} simulated seconds (~{:.1} hours)",
        scan_cost,
        scan_cost / 3600.0
    );

    // Drill down to raw data only for the matches.
    let drill_cost = tiered.drill_down_cost(&outcome.exact);
    println!(
        "drilling down to the {} matching traces costs {:.0} simulated seconds (~{:.1} minutes)",
        outcome.exact.len(),
        drill_cost,
        drill_cost / 60.0
    );

    println!(
        "\nspeedup of representation-first workflow: {:.0}x for triage, {:.1}x end-to-end with drill-down",
        scan_cost / local_cost.max(1e-9),
        scan_cost / (local_cost + drill_cost)
    );
}
