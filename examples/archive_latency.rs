//! The §1 motivation scenario: raw sequences live on a remote tape archive
//! ("obtaining raw seismic data can take several days"); compact
//! function-series representations live locally and answer feature queries
//! without touching the archive.
//!
//! Run with `cargo run --example archive_latency`.

use saq::archive::{ArchiveStore, Medium, TieredStore};
use saq::core::algebra::QueryExpr;
use saq::core::query::QuerySpec;
use saq::core::store::StoreConfig;
use saq::core::{QueryOutcome, QueryRequest};
use saq::engine::{BatchQuery, EngineConfig, QueryEngine};
use saq::sequence::generators::{random_walk, seismic_burst};
use saq::sequence::Sequence;

fn station_data() -> Vec<Sequence> {
    // 40 seismic station traces; a quarter contain a vigorous event.
    let mut traces = Vec::new();
    for i in 0..40u64 {
        if i % 4 == 0 {
            traces.push(seismic_burst(2_000, 700 + (i as usize * 13) % 600, 120, 0.05, 12.0, i));
        } else {
            traces.push(random_walk(2_000, 0.0, 0.05, 1_000 + i));
        }
    }
    traces
}

/// Runs `batch` as one coalesced wave through the unified request API.
fn run_wave(
    engine: &QueryEngine,
    archive: &ArchiveStore,
    batch: &[BatchQuery],
) -> Vec<QueryOutcome> {
    let requests: Vec<QueryRequest> =
        batch.iter().map(|q| QueryRequest::expr(QueryExpr::Leaf(q.to_pred()))).collect();
    engine
        .run_requests(&archive.snapshot(), &requests)
        .unwrap()
        .into_iter()
        .map(|r| r.unwrap().outcome)
        .collect()
}

fn main() {
    let mut tiered = TieredStore::new(
        StoreConfig { epsilon: 0.8, ..StoreConfig::default() },
        Medium::memory(),
        Medium::remote_tape(),
    )
    .unwrap();
    for trace in station_data() {
        tiered.insert(&trace).unwrap();
    }

    let report = tiered.local().total_compression();
    println!(
        "archived {} traces ({} raw samples); local representation: {} parameters ({:.1}x smaller)",
        tiered.archive().len(),
        report.original_points,
        report.parameters,
        report.ratio()
    );

    // "Sudden vigorous seismic activity": at least one steep peak.
    let query = QuerySpec::HasSteepPeak { steepness: 2.0, slack: 0.0 };
    let (outcome, local_cost) = tiered.query_local(&query).unwrap();
    println!(
        "\nquery `any peak steeper than 2.0` answered locally in {:.6} simulated seconds",
        local_cost
    );
    println!("matching stations: {:?}", outcome.exact);

    // The pre-representation workflow: fetch everything from tape and scan.
    let scan_cost = tiered.full_archive_scan_cost();
    println!(
        "\nfetching all raw traces from the remote tape would take {:.0} simulated seconds (~{:.1} hours)",
        scan_cost,
        scan_cost / 3600.0
    );

    // Drill down to raw data only for the matches.
    let drill_cost = tiered.drill_down_cost(&outcome.exact);
    println!(
        "drilling down to the {} matching traces costs {:.0} simulated seconds (~{:.1} minutes)",
        outcome.exact.len(),
        drill_cost,
        drill_cost / 60.0
    );

    println!(
        "\nspeedup of representation-first workflow: {:.0}x for triage, {:.1}x end-to-end with drill-down",
        scan_cost / local_cost.max(1e-9),
        scan_cost / (local_cost + drill_cost)
    );

    // The heavy-traffic path: a sharded 4-worker batch engine pushes a whole
    // query batch down to the raw archive, representing each trace on demand
    // and caching the result.
    let engine = QueryEngine::new(EngineConfig {
        store: StoreConfig { epsilon: 0.8, ..StoreConfig::default() },
        ..EngineConfig::default()
    })
    .unwrap();
    let batch = vec![
        BatchQuery::Feature(query.clone()),
        BatchQuery::Feature(QuerySpec::PeakCount { count: 1, tolerance: 1 }),
    ];
    tiered.archive().reset_clock();
    let outcomes = run_wave(&engine, tiered.archive(), &batch);
    assert_eq!(
        outcomes[0].exact, outcome.exact,
        "engine over raw archive agrees with the local representation query"
    );
    let cold_cost = tiered.archive().elapsed_seconds();
    tiered.archive().reset_clock();
    let again = run_wave(&engine, tiered.archive(), &batch);
    assert_eq!(again, outcomes);
    println!(
        "\nbatch engine over the raw archive: first batch pays {:.0} simulated seconds (one fetch per trace),",
        cold_cost
    );
    println!(
        "repeat batch pays {:.0}: the feature cache ({} hits so far) answers without touching the archive.",
        tiered.archive().elapsed_seconds(),
        engine.cache_stats().hits
    );
}
