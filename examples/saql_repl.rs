//! An explain-driven SAQL REPL: type a query against a small demo ward,
//! see the physical plan the statistics-backed planner chose (access
//! paths, `~N` cardinality estimates, and the `(observed M)`
//! cardinalities execution actually recorded) next to the results it
//! produces.
//!
//! Run with `cargo run --example saql_repl`. A few demo queries run on
//! startup (so non-interactive runs — CI — still exercise the loop), then
//! lines are read from stdin until EOF or `:quit`. `:help` lists the
//! commands, `docs/SAQL.md` documents the grammar.
//!
//! With `--connect HOST:PORT` the REPL becomes a `saqd` client: the same
//! queries travel the SAQP/1 wire, the server's plan rendering and
//! execution counters come back in the response, and the result box is
//! rendered by exactly the same code as the local path. Start a server
//! with `cargo run --bin saqd` (see `docs/SERVER.md`).

use saq::core::algebra::{ExecStats, StoreEngine};
use saq::core::lang::saql;
use saq::core::query::QueryOutcome;
use saq::core::store::{SequenceStore, StoreConfig};
use saq::core::QueryRequest;
use saq::sequence::generators::{goalpost, peaks, random_walk, GoalpostSpec, PeaksSpec};
use saq::server::SaqClient;
use std::io::BufRead as _;

const HELP: &str = "\
SAQL quick reference (full grammar: docs/SAQL.md)
  shape \"0* 1+ (-1)+ 0*\"            slope pattern (both notations)
  peaks = 2 tol 1                     peak count ± tolerance
  interval = 10 tol 3                 inter-peak interval ± tolerance
  steepness all >= 2.0 slack 0.25     every flank this steep (any = some)
  id in [0..9]                        id partition
  band [0:98.6, 1:99.5] delta 0.5     value envelope around a sequence
combine with:  and, or, not, ( ), limit n, topk k
commands:      :help   :corpus   :quit";

/// Where queries go: the in-process demo ward, or a `saqd` server over
/// SAQP/1. Both print through the same plan/result boxes.
enum Backend<'a> {
    Local(StoreEngine<'a>),
    Remote(SaqClient),
}

fn main() {
    let mut args = std::env::args().skip(1);
    let connect = match args.next().as_deref() {
        Some("--connect") => Some(args.next().unwrap_or_else(|| {
            eprintln!("usage: saql_repl [--connect HOST:PORT]");
            std::process::exit(2);
        })),
        Some(other) => {
            eprintln!("unknown flag `{other}` — usage: saql_repl [--connect HOST:PORT]");
            std::process::exit(2);
        }
        None => None,
    };

    let (store, kinds) = ward();
    let mut backend = match &connect {
        Some(addr) => match SaqClient::connect(addr.as_str()) {
            Ok(mut client) => {
                let snapshot = client.ping().expect("server answers PING");
                println!("SAQL REPL — connected to saqd at {addr} (snapshot {snapshot}).");
                Backend::Remote(client)
            }
            Err(e) => {
                eprintln!("cannot connect to {addr}: {e}");
                std::process::exit(1);
            }
        },
        None => {
            println!(
                "SAQL REPL — {} sequences loaded. :help for syntax, :quit to leave.",
                kinds.len()
            );
            Backend::Local(StoreEngine::new(&store))
        }
    };

    // Demo queries first: they show the explain-next-to-results format and
    // keep this example meaningful when stdin is closed (CI).
    for text in [
        "shape \"0* 1+ (-1)+ 0* 1+ (-1)+ 0*\" and interval = 10 tol 3 topk 5",
        "peaks = 3 or peaks = 1 and not id in [12..23]",
        "steepness any >= 0.8 slack 0.25 limit 4",
    ] {
        println!("\nsaql> {text}");
        run_line(&mut backend, text);
    }

    println!();
    let stdin = std::io::stdin();
    let mut lines = stdin.lock().lines();
    loop {
        print!("saql> ");
        let _ = std::io::Write::flush(&mut std::io::stdout());
        let line = match lines.next() {
            Some(Ok(l)) => l,
            _ => break,
        };
        let text = line.trim();
        match text {
            "" => continue,
            ":quit" | ":q" | ":exit" => break,
            ":help" | ":h" | "?" => println!("{HELP}"),
            ":corpus" => match &backend {
                Backend::Local(_) => {
                    for (id, kind) in &kinds {
                        println!("  #{id:<3} {kind}");
                    }
                }
                Backend::Remote(_) => println!("(remote session — the corpus lives on the server)"),
            },
            _ if text.starts_with(':') => println!("unknown command `{text}` — try :help"),
            _ => run_line(&mut backend, text),
        }
    }
}

/// Runs one query through whichever backend, printing the plan and the
/// outcome — or the caret diagnostic, which the wire preserves verbatim.
fn run_line(backend: &mut Backend<'_>, text: &str) {
    match backend {
        Backend::Local(engine) => run_local(engine, text),
        Backend::Remote(client) => {
            let req = QueryRequest::saql(text).with_stats().with_explain();
            match client.query(&req) {
                Ok(resp) => {
                    print!(
                        "── plan (wave of {}) ───────────────────\n{}",
                        client.last_wave(),
                        resp.explain.as_deref().unwrap_or("")
                    );
                    print_outcome(&resp.outcome, &resp.stats.unwrap_or_default());
                }
                Err(err) => println!("{err}"),
            }
        }
    }
}

/// The local path parses up front (caret diagnostics without a round
/// trip) and reuses one plan for explain and execution.
fn run_local(engine: &StoreEngine<'_>, text: &str) {
    let expr = match saql::parse_spanned(text) {
        Ok(expr) => expr,
        Err(err) => {
            println!("{}", err.render(text));
            return;
        }
    };
    let plan = match engine.plan(&expr) {
        Ok(plan) => plan,
        Err(err) => {
            println!("plan error: {err}");
            return;
        }
    };
    // The plan box renders *after* execution so each leaf line carries
    // its observed cardinality next to the planner's `~N` estimate.
    match engine.run_plan(&plan) {
        Ok((outcome, stats)) => {
            print!("── plan ────────────────────────────────\n{}", plan.explain_with(Some(&stats)));
            print_outcome(&outcome, &stats);
        }
        Err(err) => {
            print!("── plan ────────────────────────────────\n{}", plan.explain());
            println!("execution error: {err}");
        }
    }
}

fn print_outcome(outcome: &QueryOutcome, stats: &ExecStats) {
    println!("── result ──────────────────────────────");
    println!("  exact       ({}): {:?}", outcome.exact.len(), outcome.exact);
    let approx: Vec<String> =
        outcome.approximate.iter().map(|m| format!("#{}±{:.2}", m.id, m.deviation)).collect();
    println!("  approximate ({}): [{}]", approx.len(), approx.join(", "));
    println!(
        "  ({} candidates, {} entries scanned, {} index-served / {} scan leaves)",
        stats.universe, stats.entries_scanned, stats.index_leaves, stats.scan_leaves
    );
}

/// A 24-patient demo ward: goalpost fevers, triple spikes, single spikes,
/// wandering baselines.
fn ward() -> (SequenceStore, Vec<(u64, &'static str)>) {
    let mut store = SequenceStore::new(StoreConfig::default()).unwrap();
    let mut kinds = Vec::new();
    for i in 0..24u64 {
        let (seq, kind) = match i % 4 {
            0 => (
                goalpost(GoalpostSpec { seed: i, noise: 0.12, ..GoalpostSpec::default() }),
                "goalpost fever (2 peaks ~10h apart)",
            ),
            1 => (
                peaks(PeaksSpec {
                    centers: vec![5.0, 12.0, 19.0],
                    seed: i,
                    noise: 0.1,
                    ..PeaksSpec::default()
                }),
                "triple spike",
            ),
            2 => (
                peaks(PeaksSpec {
                    centers: vec![12.0],
                    seed: i,
                    noise: 0.2,
                    ..PeaksSpec::default()
                }),
                "single spike",
            ),
            _ => (random_walk(49, 0.0, 0.25, i), "wandering baseline"),
        };
        let id = store.insert(&seq).unwrap();
        kinds.push((id, kind));
    }
    (store, kinds)
}
