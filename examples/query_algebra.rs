//! The composable query algebra: one physician question that no single
//! `QuerySpec` can ask — *"goal-post fever with peaks about 10 hours
//! apart, excluding last month's batch, give me the 5 closest"* — planned
//! once and executed by two engines that return identical answers: the
//! sequential store engine (index pushdown) and the sharded parallel
//! batch engine over the raw archive.
//!
//! Run with `cargo run --example query_algebra`.

use saq::archive::{ArchiveStore, Medium};
use saq::core::algebra::{IndexCaps, QueryEngine, QueryExpr, StoreEngine};
use saq::core::store::{SequenceStore, StoreConfig};
use saq::engine::{EngineConfig, QueryEngine as BatchEngine};
use saq::sequence::generators::{goalpost, peaks, random_walk, GoalpostSpec, PeaksSpec};

fn main() {
    // A ward of 30 patients: a third classic goal-posts, a third triple
    // spikes, a third wandering baselines. Representations go to the local
    // store, raw logs to the (simulated) archive under the same ids.
    let mut store = SequenceStore::new(StoreConfig::default()).unwrap();
    let mut archive = ArchiveStore::new(Medium::local_disk());
    // Make fetches really block a sliver of their simulated latency so the
    // worker pool genuinely interleaves (see exp_engine_scaling).
    archive.set_realtime_scale(0.05);
    for i in 0..30u64 {
        let seq = match i % 3 {
            0 => goalpost(GoalpostSpec { seed: i, noise: 0.12, ..GoalpostSpec::default() }),
            1 => peaks(PeaksSpec {
                centers: vec![5.0, 12.0, 19.0],
                seed: i,
                noise: 0.1,
                ..PeaksSpec::default()
            }),
            _ => random_walk(49, 0.0, 0.25, i),
        };
        let id = store.insert(&seq).unwrap();
        archive.put(id, seq);
    }

    // The question, as an expression tree. `id_range(21, 30)` stands in
    // for "last month's batch".
    let expr = QueryExpr::shape("0* 1+ (-1)+ 0* 1+ (-1)+ 0*")
        .and(QueryExpr::peak_interval(10, 3))
        .and(QueryExpr::id_range(21, 30).negate())
        .top_k(5);

    // What the planner will do with it on an index-capable store. The
    // `~N` after each access path is the leaf's estimated cardinality,
    // drawn from the store's index statistics (symbol prefix counts, the
    // interval histogram, the id span): the planner orders conjunctions
    // by these estimates so the most selective operands narrow the
    // candidates first.
    let engine = StoreEngine::new(&store);
    println!("physical plan:\n{}", engine.plan(&expr).unwrap().explain());

    let (outcome, stats) = engine.execute_with_stats(&expr).unwrap();
    println!(
        "store engine: {} exact + {} approximate over {} candidates, \
         {} entries scanned ({} index-served leaves)",
        outcome.exact.len(),
        outcome.approximate.len(),
        stats.universe,
        stats.entries_scanned,
        stats.index_leaves
    );
    for id in &outcome.exact {
        println!("  exact:  patient {id}");
    }
    for m in &outcome.approximate {
        println!("  approx: patient {} (deviation {:.1})", m.id, m.deviation);
    }

    // Without indexes every leaf scans — same answer, more work.
    let (scan_outcome, scan_stats) =
        StoreEngine::with_caps(&store, IndexCaps::none()).execute_with_stats(&expr).unwrap();
    assert_eq!(outcome, scan_outcome);
    println!(
        "scan-only engine agrees, but scanned {} entries instead of {}",
        scan_stats.entries_scanned, stats.entries_scanned
    );

    // The sharded batch engine answers the same expression straight from
    // the raw archive — same ids, same tiers, same order.
    let batch = BatchEngine::new(EngineConfig { workers: 4, ..EngineConfig::default() }).unwrap();
    let parallel = batch.bind(&archive).execute(&expr).unwrap();
    assert_eq!(outcome, parallel);
    let report = batch.last_run_report();
    println!(
        "sharded engine agrees from the raw archive: simulated makespan {:.3}s \
         vs {:.3}s serial ({:.1}x overlap across {} workers)",
        report.sim_makespan_seconds(),
        report.sim_total_seconds(),
        report.sim_speedup(),
        report.workers()
    );
    let cache = report.cache_totals();
    println!(
        "feature cache this run: {} hits / {} misses ({:.0}% hit rate) across {} workers",
        cache.hits,
        cache.misses,
        cache.hit_rate() * 100.0,
        report.workers()
    );
}
