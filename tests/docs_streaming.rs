//! Keeps `docs/STREAMING.md` honest: every fenced code block tagged
//! `saqp` must parse through the real SAQP/1 implementation — SUBSCRIBE
//! bodies as SAQL, APPEND bodies as point lines, DELTA frames as the
//! typed server push, replies through `WireResponse::parse`. Run by the
//! CI docs job (and plain `cargo test`).

use saq::core::lang::saql;
use saq::server::protocol::{parse_points, DeltaFrame, Verb, WireRequest, WireResponse};

const DOC: &str = include_str!("../docs/STREAMING.md");

/// Extracts the contents of every ```saqp fenced block.
fn saqp_blocks(doc: &str) -> Vec<String> {
    let mut blocks = Vec::new();
    let mut current: Option<String> = None;
    for line in doc.lines() {
        let fence = line.trim_start();
        match &mut current {
            None if fence.trim_end() == "```saqp" => current = Some(String::new()),
            None => {}
            Some(block) => {
                if fence.starts_with("```") {
                    blocks.push(current.take().expect("block in progress"));
                } else {
                    block.push_str(line);
                    block.push('\n');
                }
            }
        }
    }
    assert!(current.is_none(), "unterminated ```saqp block in docs/STREAMING.md");
    blocks
}

#[test]
fn every_saqp_block_in_the_docs_speaks_the_real_protocol() {
    let blocks = saqp_blocks(DOC);
    assert!(
        blocks.len() >= 6,
        "docs/STREAMING.md should keep its worked protocol examples (found {})",
        blocks.len()
    );
    let mut verbs_seen = Vec::new();
    for block in &blocks {
        let status = block.lines().next().unwrap_or_default();
        if status.starts_with("OK") || status.starts_with("ERR") {
            let reply = WireResponse::parse(block).unwrap_or_else(|e| {
                panic!("docs/STREAMING.md reply failed to parse:\n{block}\n{e}")
            });
            if !reply.ok {
                assert!(reply.to_error().code() > 0, "documented errors carry a code:\n{block}");
            }
        } else {
            let request = WireRequest::parse(block).unwrap_or_else(|e| {
                panic!("docs/STREAMING.md request failed to parse:\n{block}\n{e}")
            });
            verbs_seen.push(request.verb);
            match request.verb {
                Verb::Subscribe => {
                    saql::parse(request.body.trim()).unwrap_or_else(|e| {
                        panic!("SUBSCRIBE body is not valid SAQL:\n{block}\n{e}")
                    });
                }
                Verb::Append => {
                    request.header("id").and_then(|v| v.parse::<u64>().ok()).unwrap_or_else(|| {
                        panic!("APPEND example needs a numeric id header:\n{block}")
                    });
                    let points = parse_points(&request.body).unwrap_or_else(|e| {
                        panic!("APPEND body is not valid point lines:\n{block}\n{e}")
                    });
                    assert!(!points.is_empty(), "APPEND example appends something:\n{block}");
                }
                Verb::Delta => {
                    let frame = DeltaFrame::from_wire(&request).unwrap_or_else(|e| {
                        panic!("DELTA example is not a valid push frame:\n{block}\n{e}")
                    });
                    assert!(
                        !frame.delta.is_empty(),
                        "documented deltas show a membership change:\n{block}"
                    );
                }
                Verb::Unsubscribe => {
                    request
                        .header("subscription")
                        .and_then(|v| v.parse::<u64>().ok())
                        .unwrap_or_else(|| {
                            panic!("UNSUBSCRIBE example names its subscription:\n{block}")
                        });
                }
                other => panic!("unexpected verb {other:?} in docs/STREAMING.md:\n{block}"),
            }
        }
    }
    for verb in [Verb::Subscribe, Verb::Append, Verb::Delta, Verb::Unsubscribe] {
        assert!(
            verbs_seen.contains(&verb),
            "docs/STREAMING.md documents every streaming verb (missing {verb:?})"
        );
    }
}

#[test]
fn documented_examples_round_trip_through_render() {
    for block in saqp_blocks(DOC) {
        let status = block.lines().next().unwrap_or_default();
        if status.starts_with("OK") || status.starts_with("ERR") {
            let reply = WireResponse::parse(&block).unwrap();
            assert_eq!(WireResponse::parse(&reply.render()).unwrap(), reply);
        } else {
            let request = WireRequest::parse(&block).unwrap();
            assert_eq!(WireRequest::parse(&request.render()).unwrap(), request);
        }
    }
}
