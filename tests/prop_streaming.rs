//! Streaming ingestion against the from-scratch oracle.
//!
//! Random append schedules (1..64 points per wave) interleaved with puts
//! and removes drive the incremental paths — `SequenceStore::append_points`
//! suffix splicing and `ArchiveStore::append_points` delta tracking — and
//! after *every* generation the incrementally maintained state must be
//! indistinguishable from throwing everything away and rebuilding: the
//! re-broken series, the derived features, the `IndexSet`, and the query
//! results all have to match a from-scratch oracle byte for byte.
//!
//! `SAQ_PROP_STREAM_CASES` raises the proptest case count (the CI stress
//! job sets it).

mod common;

use common::{mixed_sequence, naive_eval, to_outcome};
use proptest::prelude::*;
use saq::archive::{ArchiveStore, Medium};
use saq::core::algebra::{Planner, QueryEngine as _, QueryExpr};
use saq::core::store::{BreakerKind, SequenceStore, StoreConfig, StoredEntry};
use saq::sequence::{Point, Sequence};
use std::collections::BTreeMap;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// A deterministic random-walk tail continuing from `last`: strictly
/// increasing timestamps with irregular spacing, so appends exercise the
/// same shapes live feeds produce (xorshift keeps every wave reproducible
/// from its script seed).
fn walk_tail(last: Point, n: usize, seed: u64) -> Vec<Point> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(0x1234_5678);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let (mut t, mut v) = (last.t, last.v);
    (0..n)
        .map(|_| {
            t += 0.5 + (next() % 4) as f64 * 0.25;
            v += ((next() % 200) as f64 - 99.5) / 40.0;
            Point::new(t, v)
        })
        .collect()
}

// Script ops are `(slot, action, n, seed)` tuples — slot picks the
// target, action picks append/put/remove (biased toward appends, the
// path under test), n sizes the appended wave, seed varies content.

fn wave_points(n: u64) -> usize {
    (n % 64) as usize + 1
}

/// Asserts a spliced entry is byte-identical to recomputing the whole
/// extended sequence from scratch — series, symbols, peaks, and raw.
fn assert_entry_matches_oracle(entry: &StoredEntry, truth: &[Point], config: &StoreConfig) {
    let seq = Sequence::new(truth.to_vec()).unwrap();
    let oracle = StoredEntry::compute(&seq, config).unwrap();
    assert_eq!(entry.series, oracle.series, "spliced series diverged from rebuild");
    assert_eq!(entry.symbols, oracle.symbols, "spliced symbols diverged from rebuild");
    assert_eq!(entry.peaks, oracle.peaks, "spliced peaks diverged from rebuild");
    assert_eq!(
        entry.raw.as_ref().map(|s| s.points()),
        Some(truth),
        "retained raw sequence diverged from the appended truth"
    );
}

fn small_exprs() -> Vec<QueryExpr> {
    vec![
        QueryExpr::peak_count(2, 1).or(QueryExpr::peak_interval(10, 3)),
        QueryExpr::shape("0* 1+ (-1)+ 0*").and(QueryExpr::peak_count(2, 1).negate()),
        QueryExpr::min_steepness(0.6, 0.2).top_k(4),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        env_usize("SAQ_PROP_STREAM_CASES", 4) as u32
    ))]

    /// The tentpole property on the representation store: under a random
    /// append/put/remove schedule, a streaming store's entries, `IndexSet`
    /// statistics, and engine answers are identical at every generation to
    /// a from-scratch rebuild of whatever raw truth has accumulated.
    #[test]
    fn streamed_store_matches_from_scratch_rebuild_at_every_generation(
        corpus in proptest::collection::vec((0u64..4, 0u64..1000), 3..7),
        script in proptest::collection::vec(
            (0u64..8, 0u64..8, 0u64..1000, 0u64..1000), 6..20,
        ),
    ) {
        let config = StoreConfig::streaming();
        let mut store = SequenceStore::new(config).unwrap();
        // The raw truth: what each live id's points *should* be.
        let mut truth: BTreeMap<u64, Vec<Point>> = BTreeMap::new();
        for &(kind, seed) in &corpus {
            let seq = mixed_sequence(kind, seed);
            let id = store.insert(&seq).unwrap();
            truth.insert(id, seq.points().to_vec());
        }
        let exprs = small_exprs();

        for &(slot, action, n, seed) in &script {
            let generation = store.generation();
            let ids: Vec<u64> = truth.keys().copied().collect();
            let target = ids.get(slot as usize % ids.len().max(1)).copied();
            match (action % 8, target) {
                // Removes and fresh puts interleave with the append
                // schedule, churning ids and index postings around it.
                (6, Some(id)) => {
                    store.remove(id).unwrap();
                    truth.remove(&id);
                }
                (7, _) | (_, None) => {
                    let seq = mixed_sequence(action, seed);
                    let id = store.insert(&seq).unwrap();
                    truth.insert(id, seq.points().to_vec());
                }
                (_, Some(id)) => {
                    let points = truth.get_mut(&id).unwrap();
                    let tail = walk_tail(*points.last().unwrap(), wave_points(n), seed);
                    let report = store.append_points(id, &tail).unwrap();
                    points.extend_from_slice(&tail);
                    prop_assert_eq!(report.total_points, points.len());
                    prop_assert!(
                        report.splice_index + report.rebroken_points == points.len(),
                        "splice must cover exactly the suffix"
                    );
                }
            }
            prop_assert_eq!(store.generation(), generation + 1, "one bump per wave");

            // Every live entry — not just the touched one — must equal its
            // from-scratch recomputation, so a splice can never corrupt a
            // neighbour.
            for (&id, points) in &truth {
                assert_entry_matches_oracle(store.get(id).unwrap(), points, &config);
            }

            // The IndexSet after incremental maintenance must carry the
            // same statistics as a store rebuilt from the raw truth...
            let mut rebuilt = SequenceStore::new(config).unwrap();
            for points in truth.values() {
                rebuilt.insert(&Sequence::new(points.clone()).unwrap()).unwrap();
            }
            prop_assert_eq!(store.index_stats(), rebuilt.index_stats(),
                "incremental IndexSet drifted from a from-scratch rebuild");

            // ...and the engine answers over it must match the naive
            // set-algebra oracle over the live entries.
            let snap = store.snapshot();
            let refs: BTreeMap<u64, &StoredEntry> =
                snap.ids().iter().map(|&id| (id, snap.get(id).unwrap())).collect();
            for expr in &exprs {
                let expected =
                    to_outcome(naive_eval(&Planner::normalize(expr), &snap.ids(), &refs));
                prop_assert_eq!(snap.execute(expr).unwrap(), expected);
            }
        }
    }

    /// The same schedule against the raw archive: contents always equal
    /// the accumulated truth, the generation bumps exactly once per wave,
    /// and `changed_since` names exactly the touched id — the contract the
    /// subscription pump's pruning stands on.
    #[test]
    fn streamed_archive_tracks_exact_deltas(
        corpus in proptest::collection::vec((0u64..4, 0u64..1000), 2..6),
        script in proptest::collection::vec(
            (0u64..12, 0u64..8, 0u64..1000, 0u64..1000), 6..24,
        ),
    ) {
        let mut archive = ArchiveStore::new(Medium::memory());
        let mut truth: BTreeMap<u64, Vec<Point>> = BTreeMap::new();
        for (i, &(kind, seed)) in corpus.iter().enumerate() {
            let seq = mixed_sequence(kind, seed);
            truth.insert(i as u64, seq.points().to_vec());
            archive.put(i as u64, seq);
        }
        let baseline = archive.generation();

        for &(slot, action, n, seed) in &script {
            let generation = archive.generation();
            let id = slot % 8;
            match action % 8 {
                6 => {
                    let removed = archive.remove(id);
                    prop_assert_eq!(removed.is_some(), truth.remove(&id).is_some());
                }
                7 => {
                    let seq = mixed_sequence(action, seed);
                    truth.insert(id, seq.points().to_vec());
                    archive.put(id, seq);
                }
                _ => {
                    // Appending to an unknown id creates it — the fleet
                    // telemetry shape, where new sources just start
                    // emitting.
                    let start = truth
                        .get(&id)
                        .map(|p| *p.last().unwrap())
                        .unwrap_or_else(|| Point::new(0.0, (seed % 7) as f64));
                    let tail = walk_tail(start, wave_points(n), seed);
                    let total = archive.append_points(id, &tail);
                    truth.entry(id).or_default().extend_from_slice(&tail);
                    prop_assert_eq!(total, truth[&id].len());
                }
            }
            prop_assert_eq!(archive.generation(), generation + 1, "one bump per wave");
            prop_assert_eq!(
                archive.changed_since(generation),
                Some(vec![id]),
                "the delta names exactly the touched id"
            );
            prop_assert_eq!(archive.changed_since(archive.generation()), Some(vec![]));

            // The stored bytes equal the accumulated truth for every id.
            prop_assert_eq!(archive.len(), truth.len());
            for (&tid, points) in &truth {
                let stored = archive.get(tid).unwrap();
                prop_assert_eq!(stored.points(), points.as_slice());
            }
        }

        // The union of all per-wave deltas is what changed since the
        // baseline (or the log was trimmed and the answer is honest).
        if let Some(mut dirty) = archive.changed_since(baseline) {
            dirty.sort_unstable();
            for &(slot, _, _, _) in &script {
                prop_assert!(dirty.binary_search(&(slot % 8)).is_ok());
            }
        }
    }
}

/// The acceptance criterion, pinned: appending `k` points to one long
/// sequence re-breaks only its open suffix — closed segments are reused
/// and the re-examined point count is a small constant plus `k`, far below
/// the batch re-run's full length.
#[test]
fn appends_rebreak_only_the_open_suffix() {
    let config = StoreConfig::streaming();
    let mut store = SequenceStore::new(config).unwrap();
    let mut points = mixed_sequence(3, 7).points().to_vec();
    while points.len() < 400 {
        let tail = walk_tail(*points.last().unwrap(), 50, points.len() as u64);
        points.extend_from_slice(&tail);
    }
    let id = store.insert(&Sequence::new(points.clone()).unwrap()).unwrap();

    for k in [1usize, 8, 32] {
        let tail = walk_tail(*points.last().unwrap(), k, k as u64);
        let report = store.append_points(id, &tail).unwrap();
        points.extend_from_slice(&tail);
        assert!(report.reused_segments > 0, "closed prefix must be reused");
        assert!(
            report.rebroken_points < points.len() / 4,
            "suffix work ({}) must stay far below the batch re-run ({})",
            report.rebroken_points,
            points.len()
        );
        assert_entry_matches_oracle(store.get(id).unwrap(), &points, &config);
    }
}

/// The offline breaker has no stable suffix, so the append path falls back
/// to a full recompute — correct, just not incremental — and reports it
/// honestly.
#[test]
fn offline_breaker_appends_fall_back_to_full_recompute() {
    let config = StoreConfig { keep_raw: true, ..StoreConfig::default() };
    assert_eq!(config.breaker, BreakerKind::Offline);
    let mut store = SequenceStore::new(config).unwrap();
    let mut points = mixed_sequence(0, 11).points().to_vec();
    let id = store.insert(&Sequence::new(points.clone()).unwrap()).unwrap();

    let tail = walk_tail(*points.last().unwrap(), 5, 3);
    let report = store.append_points(id, &tail).unwrap();
    points.extend_from_slice(&tail);
    assert_eq!(report.reused_segments, 0);
    assert_eq!(report.rebroken_points, report.total_points);
    assert_entry_matches_oracle(store.get(id).unwrap(), &points, &config);
}

/// Failed appends leave the store untouched: unknown ids, empty waves, and
/// non-monotonic timestamps all reject without burning a generation or
/// disturbing the entry.
#[test]
fn rejected_appends_leave_the_store_untouched() {
    let config = StoreConfig::streaming();
    let mut store = SequenceStore::new(config).unwrap();
    let seq = mixed_sequence(1, 5);
    let id = store.insert(&seq).unwrap();
    let generation = store.generation();
    let stats = store.index_stats();

    assert!(store.append_points(id + 99, &[Point::new(1e6, 0.0)]).is_err(), "unknown id");
    assert!(store.append_points(id, &[]).is_err(), "empty wave");
    let stale = seq.points()[0];
    assert!(store.append_points(id, &[stale]).is_err(), "non-monotonic timestamp");

    assert_eq!(store.generation(), generation, "failed appends burn no generation");
    assert_eq!(store.index_stats(), stats, "failed appends touch no postings");
    assert_entry_matches_oracle(store.get(id).unwrap(), seq.points(), &config);
}
