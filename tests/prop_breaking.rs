//! Property-based tests of the §5.1 breaker requirements over randomized
//! inputs: partition validity, the ε deviation bound, robustness under
//! insertion, and consistency under feature-preserving transformations.

use proptest::prelude::*;
use saq::core::brk::{
    Breaker, DynamicProgrammingBreaker, LinearInterpolationBreaker, LinearRegressionBreaker,
    OnlineBreaker,
};
use saq::curves::{max_deviation, CurveFitter, EndpointInterpolator};
use saq::sequence::{Point, Sequence};

fn arb_values(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-50.0f64..50.0, 1..max_len)
}

fn check_partition(ranges: &[(usize, usize)], n: usize) {
    assert!(!ranges.is_empty());
    assert_eq!(ranges[0].0, 0);
    assert_eq!(ranges[ranges.len() - 1].1, n - 1);
    for w in ranges.windows(2) {
        assert_eq!(w[0].1 + 1, w[1].0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn interpolation_breaker_always_partitions(values in arb_values(120)) {
        let seq = Sequence::from_samples(&values).unwrap();
        let ranges = LinearInterpolationBreaker::new(2.0).break_ranges(&seq);
        check_partition(&ranges, seq.len());
    }

    #[test]
    fn all_breakers_partition_arbitrary_data(values in arb_values(60)) {
        let seq = Sequence::from_samples(&values).unwrap();
        for ranges in [
            LinearInterpolationBreaker::new(1.0).break_ranges(&seq),
            LinearInterpolationBreaker::coalescing(1.0).break_ranges(&seq),
            LinearRegressionBreaker::new(1.0).break_ranges(&seq),
            OnlineBreaker::new(1.0).break_ranges(&seq),
            DynamicProgrammingBreaker::new(1.0, 1.0).break_ranges(&seq),
        ] {
            check_partition(&ranges, seq.len());
        }
    }

    #[test]
    fn epsilon_bound_holds_on_multipoint_segments(
        values in arb_values(100),
        eps in 0.5f64..5.0,
    ) {
        let seq = Sequence::from_samples(&values).unwrap();
        let ranges = LinearInterpolationBreaker::new(eps).break_ranges(&seq);
        for (lo, hi) in ranges {
            if hi > lo {
                let run = &seq.points()[lo..=hi];
                let line = EndpointInterpolator.fit(run).unwrap();
                let d = max_deviation(&line, run).unwrap();
                // Breakers accept up to ε + 1e-12 · window magnitude; with
                // values in ±50 that stays far below this 1e-9 headroom.
                prop_assert!(d.value <= eps + 1e-9, "({lo},{hi}) dev {}", d.value);
            }
        }
    }

    #[test]
    fn segment_count_monotone_in_epsilon(values in arb_values(80)) {
        let seq = Sequence::from_samples(&values).unwrap();
        let fine = LinearInterpolationBreaker::new(0.25).break_ranges(&seq).len();
        let coarse = LinearInterpolationBreaker::new(4.0).break_ranges(&seq).len();
        prop_assert!(coarse <= fine, "coarse {coarse} fine {fine}");
    }

    #[test]
    fn robustness_insertion_on_representing_function(
        knots in prop::collection::vec(-30.0f64..30.0, 3..7),
        pick in 0usize..1000,
    ) {
        // §5.1's robustness definition: inserting a point s' between s_l and
        // s_{l+1} with |F(t) - s'| <= eps — where F is the *representing
        // function* of the enclosing subsequence — shifts breakpoints by at
        // most one position. The property concerns sequences that break
        // into meaningful subsequences (the paper's setting), so the input
        // is piecewise linear between well-separated knots; we insert
        // exactly on F (deviation 0).
        let knot_points: Vec<(f64, f64)> = knots
            .iter()
            .enumerate()
            .map(|(i, &v)| ((i * 8) as f64, v))
            .collect();
        let seq = saq::sequence::generators::piecewise_linear(&knot_points);
        let breaker = LinearInterpolationBreaker::new(1.0);
        let ranges = breaker.break_ranges(&seq);
        // Pick a long segment and an interior gap, away from the ends.
        let candidates: Vec<(usize, usize)> = ranges
            .iter()
            .copied()
            .filter(|(lo, hi)| hi - lo >= 3)
            .collect();
        prop_assume!(!candidates.is_empty());
        let (lo, hi) = candidates[pick % candidates.len()];
        let gap = lo + 1 + pick % (hi - lo - 2).max(1); // interior gap
        let f = saq::curves::Line::through(seq[lo], seq[hi]).unwrap();
        let t = 0.5 * (seq[gap].t + seq[gap + 1].t);
        let on_f = Point::new(t, saq::curves::Curve::eval(&f, t));
        let perturbed = seq.insert(on_f).unwrap();

        let before = breaker.breakpoints(&seq);
        let after = breaker.breakpoints(&perturbed);
        prop_assert_eq!(before.len(), after.len(), "structure changed");
        for (x, y) in before.iter().zip(&after) {
            let expected = if *x > gap { x + 1 } else { *x };
            prop_assert!(
                y.abs_diff(expected) <= 1,
                "breakpoint {x} moved to {y} (expected ~{expected})"
            );
        }
    }

    #[test]
    fn consistency_under_amplitude_shift(values in arb_values(80), dv in -20.0f64..20.0) {
        // AmplitudeShift changes no deviations at all: identical breaking.
        let seq = Sequence::from_samples(&values).unwrap();
        let shifted = seq.map_values(|v| v + dv).unwrap();
        let breaker = LinearInterpolationBreaker::new(1.0);
        prop_assert_eq!(breaker.break_ranges(&seq), breaker.break_ranges(&shifted));
    }

    #[test]
    fn consistency_under_time_shift(values in arb_values(80), dt in 0.0f64..100.0) {
        let seq = Sequence::from_samples(&values).unwrap();
        let shifted = seq.map_times(|t| t + dt).unwrap();
        let breaker = LinearInterpolationBreaker::new(1.0);
        prop_assert_eq!(breaker.break_ranges(&seq), breaker.break_ranges(&shifted));
    }

    #[test]
    fn dp_is_optimal_for_its_cost(values in arb_values(40)) {
        let seq = Sequence::from_samples(&values).unwrap();
        let dp = DynamicProgrammingBreaker::new(2.0, 1.0);
        let dp_cost = dp.cost_of(&seq, &dp.break_ranges(&seq));
        // Any competitor segmentation costs at least as much.
        for other in [
            LinearInterpolationBreaker::new(1.0).break_ranges(&seq),
            OnlineBreaker::new(1.0).break_ranges(&seq),
            vec![(0, seq.len() - 1)],
        ] {
            prop_assert!(dp_cost <= dp.cost_of(&seq, &other) + 1e-6);
        }
    }
}
