//! Standing-query deltas against the batch oracle.
//!
//! The pump contract: after every mutation wave, for every subscription,
//! `entered ∪ (previous − left)` must equal a fresh batch run of the same
//! expression at the pinned generation — no matter which engine evaluates
//! it, how aggressively the pruning ladder skipped work, or how the dirty
//! set was obtained. The suites here drive that invariant through all
//! three engine families (the indexed `StoreEngine`, the pinned
//! `ArchiveScanEngine`, and the sharded engine's snapshot binding),
//! through the index-statistics empty proof, through the `changed_since`
//! wildcard, and under a live writer thread racing the pumps.
//!
//! `SAQ_PROP_SUBSCRIPTION_CASES` raises the proptest case count (the CI
//! stress job sets it).

mod common;

use common::{mixed_sequence, naive_eval, to_outcome};
use proptest::prelude::*;
use saq::archive::{ArchiveScanEngine, ArchiveSnapshot, ArchiveStore, Medium};
use saq::core::algebra::{PlanStats, Planner, QueryExpr, StoreEngine};
use saq::core::store::{SequenceStore, StoreConfig, StoredEntry};
use saq::core::{Delta, SubscriptionId, SubscriptionRegistry};
use saq::engine::{EngineConfig, QueryEngine as ShardedEngine};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// The sorted id membership a standing query watches: exact and
/// approximate tiers both count.
fn oracle_ids(snap: &ArchiveSnapshot, expr: &QueryExpr) -> Vec<u64> {
    let config = StoreConfig::default();
    let entries: BTreeMap<u64, StoredEntry> = snap
        .ids()
        .iter()
        .map(|&id| (id, StoredEntry::compute(snap.get(id).unwrap(), &config).unwrap()))
        .collect();
    let refs: BTreeMap<u64, &StoredEntry> = entries.iter().map(|(&id, e)| (id, e)).collect();
    let outcome = to_outcome(naive_eval(&Planner::normalize(expr), snap.ids(), &refs));
    membership(outcome)
}

fn store_oracle_ids(store: &SequenceStore, expr: &QueryExpr) -> Vec<u64> {
    let ids = store.ids();
    let refs: BTreeMap<u64, &StoredEntry> =
        ids.iter().map(|&id| (id, store.get(id).unwrap())).collect();
    membership(to_outcome(naive_eval(&Planner::normalize(expr), &ids, &refs)))
}

fn membership(outcome: saq::core::query::QueryOutcome) -> Vec<u64> {
    let mut ids = outcome.exact;
    ids.extend(outcome.approximate.into_iter().map(|m| m.id));
    ids.sort_unstable();
    ids.dedup();
    ids
}

/// A diverse standing-query mix: a feature count, an id-bounded shape
/// (exercises the id-bounds prune), a disjunction, and a TopK whose
/// membership churns as rankings shift.
fn standing_queries() -> Vec<QueryExpr> {
    vec![
        QueryExpr::peak_count(2, 1),
        QueryExpr::shape("0* 1+ (-1)+ 0*").and(QueryExpr::id_range(0, 3)),
        QueryExpr::peak_interval(10, 3).or(QueryExpr::min_steepness(0.8, 0.2)),
        QueryExpr::peak_count(1, 0).negate().top_k(3),
    ]
}

/// Applies one pump's delta to the previous membership and checks both
/// against the fresh oracle: the registry's own `current` and the
/// delta-reconstructed set must equal the batch answer.
fn assert_pump_invariant(
    registry: &SubscriptionRegistry,
    prev: &BTreeMap<SubscriptionId, Vec<u64>>,
    deltas: &[(SubscriptionId, Delta)],
    expected: &BTreeMap<SubscriptionId, Vec<u64>>,
    context: &str,
) {
    let empty = Delta::default();
    for (&id, want) in expected {
        let delta = deltas.iter().find(|(d, _)| *d == id).map(|(_, d)| d).unwrap_or(&empty);
        let mut rebuilt: Vec<u64> = prev
            .get(&id)
            .map(|p| p.iter().copied().filter(|x| !delta.left.contains(x)).collect())
            .unwrap_or_default();
        rebuilt.extend_from_slice(&delta.entered);
        rebuilt.sort_unstable();
        rebuilt.dedup();
        assert_eq!(&rebuilt, want, "{context}: entered ∪ (prev − left) != batch oracle");
        assert_eq!(
            registry.current(id),
            Some(want.as_slice()),
            "{context}: registry membership != batch oracle"
        );
    }
}

fn snapshot_current(registry: &SubscriptionRegistry) -> BTreeMap<SubscriptionId, Vec<u64>> {
    registry
        .ids()
        .into_iter()
        .filter_map(|id| registry.current(id).map(|c| (id, c.to_vec())))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        env_usize("SAQ_PROP_SUBSCRIPTION_CASES", 4) as u32
    ))]

    /// Archive churn, two registries in lockstep — one pumped through the
    /// pinned scan engine, one through the sharded engine's snapshot
    /// binding. After every wave both match the batch oracle at the
    /// pinned generation and each other, delta for delta.
    #[test]
    fn subscription_deltas_match_the_batch_oracle_under_archive_churn(
        corpus in proptest::collection::vec((0u64..4, 0u64..1000), 4..8),
        script in proptest::collection::vec(
            (0u64..8, 0u64..8, 1u64..48, 0u64..1000), 4..14,
        ),
    ) {
        let mut archive = ArchiveStore::new(Medium::memory());
        for (i, &(kind, seed)) in corpus.iter().enumerate() {
            archive.put(i as u64, mixed_sequence(kind, seed));
        }
        let engine = ShardedEngine::new(EngineConfig {
            workers: 2,
            shards: 3,
            ..EngineConfig::default()
        }).unwrap();
        let mut scan_reg = SubscriptionRegistry::new();
        let mut sharded_reg = SubscriptionRegistry::new();
        for expr in standing_queries() {
            scan_reg.register(expr.clone()).unwrap();
            sharded_reg.register(expr).unwrap();
        }
        let mut last_pumped = 0;

        // Wave 0 is the baseline pump; later waves each apply one mutation
        // first. The same snapshot feeds the oracle and both engines.
        for wave in 0..=script.len() {
            if let Some(&(slot, action, n, seed)) = wave.checked_sub(1).and_then(|w| script.get(w)) {
                let id = slot % 8;
                match action % 4 {
                    0 => {
                        archive.remove(id);
                    }
                    1 => archive.put(id, mixed_sequence(action + seed, seed)),
                    _ => {
                        let start = archive
                            .get(id)
                            .map(|s| *s.points().last().unwrap())
                            .unwrap_or_else(|| saq::sequence::Point::new(0.0, 0.0));
                        let tail: Vec<saq::sequence::Point> = (1..=(n % 48) + 1)
                            .map(|i| saq::sequence::Point::new(
                                start.t + i as f64,
                                start.v + ((seed.wrapping_mul(i) % 17) as f64 - 8.0) * 0.2,
                            ))
                            .collect();
                        archive.append_points(id, &tail);
                    }
                }
            }
            let snap = archive.snapshot();
            let dirty = snap.changed_since(last_pumped);
            let expected: BTreeMap<SubscriptionId, Vec<u64>> = scan_reg
                .ids()
                .into_iter()
                .map(|id| (id, oracle_ids(&snap, scan_reg.expr(id).unwrap())))
                .collect();

            let scan = ArchiveScanEngine::pinned(snap.clone(), StoreConfig::default());
            let prev = snapshot_current(&scan_reg);
            let scan_deltas = scan_reg.pump(&scan, dirty.as_deref(), None).unwrap();
            assert_pump_invariant(&scan_reg, &prev, &scan_deltas, &expected, "scan");

            let prev = snapshot_current(&sharded_reg);
            let sharded_deltas = engine
                .pump_subscriptions(&snap, &mut sharded_reg, last_pumped)
                .unwrap();
            assert_pump_invariant(&sharded_reg, &prev, &sharded_deltas, &expected, "sharded");

            prop_assert_eq!(scan_deltas, sharded_deltas, "engines disagree on wave {}", wave);
            last_pumped = snap.generation();
        }
    }

    /// The indexed store engine, pumped with fresh `PlanStats` so the
    /// index-statistics empty proof fires where it can: pruned or not,
    /// membership equals the batch oracle after every wave.
    #[test]
    fn store_engine_subscriptions_match_under_stats_pruning(
        corpus in proptest::collection::vec((0u64..4, 0u64..1000), 3..7),
        script in proptest::collection::vec(
            (0u64..8, 0u64..8, 1u64..32, 0u64..1000), 4..12,
        ),
    ) {
        let mut store = SequenceStore::new(StoreConfig::streaming()).unwrap();
        for &(kind, seed) in &corpus {
            store.insert(&mixed_sequence(kind, seed)).unwrap();
        }
        let mut registry = SubscriptionRegistry::new();
        for expr in standing_queries() {
            registry.register(expr).unwrap();
        }
        // A query no corpus member can satisfy: the interval histogram
        // proves it empty, so the stats ladder resolves it without the
        // engine — and that shortcut must preserve the invariant too.
        registry.register(QueryExpr::peak_interval(4000, 0)).unwrap();

        for wave in 0..=script.len() {
            let dirty: Option<Vec<u64>> =
                match wave.checked_sub(1).and_then(|w| script.get(w)) {
                    None => None, // baseline: wildcard
                    Some(&(slot, action, n, seed)) => {
                        let ids = store.ids();
                        let target = ids.get(slot as usize % ids.len().max(1)).copied();
                        match (action % 4, target) {
                            (0, Some(id)) => {
                                store.remove(id).unwrap();
                                Some(vec![id])
                            }
                            (1, _) | (_, None) => {
                                let id = store.insert(&mixed_sequence(action, seed)).unwrap();
                                Some(vec![id])
                            }
                            (_, Some(id)) => {
                                let last = *store.get(id).unwrap()
                                    .raw.as_ref().unwrap().points().last().unwrap();
                                let tail: Vec<saq::sequence::Point> = (1..=(n % 32) + 1)
                                    .map(|i| saq::sequence::Point::new(
                                        last.t + i as f64,
                                        last.v + ((seed.wrapping_mul(i) % 11) as f64 - 5.0) * 0.3,
                                    ))
                                    .collect();
                                store.append_points(id, &tail).unwrap();
                                Some(vec![id])
                            }
                        }
                    }
                };

            let expected: BTreeMap<SubscriptionId, Vec<u64>> = registry
                .ids()
                .into_iter()
                .map(|id| (id, store_oracle_ids(&store, registry.expr(id).unwrap())))
                .collect();
            let stats = PlanStats::from_store(&store);
            let prev = snapshot_current(&registry);
            let engine = StoreEngine::new(&store);
            let deltas = registry.pump(&engine, dirty.as_deref(), Some(&stats)).unwrap();
            assert_pump_invariant(&registry, &prev, &deltas, &expected, "store");
        }
        // The provably-empty subscription must have actually been pruned
        // by statistics at least once (waves after its baseline).
        prop_assert!(registry.counters().skipped_index >= 1);
    }
}

/// The wildcard regression: after `mark_all_changed`, `changed_since`
/// answers `None`, and `None` must re-evaluate *every* subscription —
/// including ones whose id bounds would have pruned any concrete dirty
/// set. Collapsing the wildcard to an empty dirty set would freeze
/// subscriptions forever; this pins the fix.
#[test]
fn changed_since_wildcard_reevaluates_every_subscription() {
    let mut archive = ArchiveStore::new(Medium::memory());
    for i in 0..6u64 {
        archive.put(i, mixed_sequence(i % 4, i));
    }
    let mut registry = SubscriptionRegistry::new();
    let watched = registry.register(QueryExpr::peak_count(2, 1)).unwrap();
    // Bounded far away from every id the wildcard wave touches.
    let bounded =
        registry.register(QueryExpr::peak_count(2, 1).and(QueryExpr::id_range(100, 200))).unwrap();

    let baseline = archive.snapshot();
    let scan = ArchiveScanEngine::pinned(baseline.clone(), StoreConfig::default());
    registry.pump(&scan, baseline.changed_since(0).as_deref(), None).unwrap();
    let last_pumped = baseline.generation();
    let before = registry.counters().evaluated;
    let prev_watched = registry.current(watched).unwrap().to_vec();
    assert!(!prev_watched.is_empty(), "the corpus must give the watched query members");

    // A wave the mutation log cannot describe: remove one member, then
    // wipe the log.
    archive.remove(prev_watched[0]);
    archive.mark_all_changed();
    let snap = archive.snapshot();
    let dirty = snap.changed_since(last_pumped);
    assert_eq!(dirty, None, "mark_all_changed makes the delta unknowable");

    let scan = ArchiveScanEngine::pinned(snap.clone(), StoreConfig::default());
    let deltas = registry.pump(&scan, dirty.as_deref(), None).unwrap();
    assert_eq!(
        registry.counters().evaluated - before,
        2,
        "the wildcard must re-evaluate every subscription, id bounds or not"
    );
    assert_eq!(
        deltas,
        vec![(watched, Delta { entered: vec![], left: vec![prev_watched[0]] })],
        "the removal surfaces even though the log could not name it"
    );
    assert_eq!(registry.current(watched), Some(&prev_watched[1..]));
    assert_eq!(registry.current(bounded), Some(&[][..]));
}

/// The live-writer variant, mirroring `prop_snapshot.rs`: a writer thread
/// churns the archive through its own handle while readers pump their own
/// registries against pinned snapshots. Whatever generation a pump pins,
/// its membership must equal the batch oracle at exactly that generation.
#[test]
fn pumps_racing_a_live_writer_match_their_pinned_generation() {
    let mut archive = ArchiveStore::new(Medium::memory());
    for i in 0..8u64 {
        archive.put(i, mixed_sequence(i % 4, i));
    }
    let engine = Arc::new(
        ShardedEngine::new(EngineConfig { workers: 2, shards: 3, ..EngineConfig::default() })
            .unwrap(),
    );
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let mut writer = archive.clone();
        let stop_ref = &stop;
        scope.spawn(move || {
            let mut round = 0u64;
            while !stop_ref.load(Ordering::Relaxed) {
                let id = round % 10;
                match round % 3 {
                    0 => writer.put(id, mixed_sequence(round % 4, 500 + round)),
                    1 => drop(writer.remove(id)),
                    _ => {
                        let start = writer
                            .get(id)
                            .map(|s| *s.points().last().unwrap())
                            .unwrap_or_else(|| saq::sequence::Point::new(0.0, 1.0));
                        let tail: Vec<saq::sequence::Point> = (1..=5)
                            .map(|i| {
                                saq::sequence::Point::new(
                                    start.t + i as f64,
                                    start.v + (i as f64 * 0.37).sin(),
                                )
                            })
                            .collect();
                        writer.append_points(id, &tail);
                    }
                }
                round += 1;
                std::thread::yield_now();
            }
        });

        let mut handles = Vec::new();
        for _ in 0..env_usize("SAQ_PROP_SUBSCRIPTION_READERS", 2) {
            let reader = archive.clone();
            let engine = Arc::clone(&engine);
            handles.push(scope.spawn(move || {
                let mut registry = SubscriptionRegistry::new();
                for expr in standing_queries() {
                    registry.register(expr).unwrap();
                }
                let mut last_pumped = 0;
                for _ in 0..4 {
                    let snap = reader.snapshot();
                    let prev = snapshot_current(&registry);
                    let deltas =
                        engine.pump_subscriptions(&snap, &mut registry, last_pumped).unwrap();
                    let expected: BTreeMap<SubscriptionId, Vec<u64>> = registry
                        .ids()
                        .into_iter()
                        .map(|id| (id, oracle_ids(&snap, registry.expr(id).unwrap())))
                        .collect();
                    assert_pump_invariant(&registry, &prev, &deltas, &expected, "racing");
                    last_pumped = snap.generation();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
    });
}
