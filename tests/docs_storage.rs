//! Keeps `docs/STORAGE.md` honest: every ```wal-record fenced block is
//! re-encoded through `saq::durable` and compared byte-for-byte against
//! the documented hex, and the ```storage-keys block is checked against
//! the real key constants. If the on-disk format drifts, this fails
//! before a reader is misled.

use saq::durable::store::{docs_key, segment_key, MANIFEST_KEY};
use saq::durable::wal::WAL_KEY;
use saq::durable::{WalOp, WalRecord};

const DOC: &str = include_str!("../docs/STORAGE.md");

/// Extracts the bodies of fenced code blocks tagged `tag`, in order.
fn fenced_blocks(doc: &str, tag: &str) -> Vec<String> {
    let mut blocks = Vec::new();
    let mut current: Option<String> = None;
    for line in doc.lines() {
        match &mut current {
            Some(body) => {
                if line.trim() == "```" {
                    blocks.push(current.take().unwrap());
                } else {
                    body.push_str(line);
                    body.push('\n');
                }
            }
            None => {
                if line.trim() == format!("```{tag}") {
                    current = Some(String::new());
                }
            }
        }
    }
    assert!(current.is_none(), "unterminated ```{tag} block in docs/STORAGE.md");
    blocks
}

/// Parses a `key=value`-style field out of a wal-record header line.
fn field<'a>(header: &'a str, key: &str) -> Option<&'a str> {
    header.split_whitespace().find_map(|tok| tok.strip_prefix(key)?.strip_prefix('='))
}

fn parse_hex(text: &str) -> Vec<u8> {
    text.split_whitespace()
        .map(|byte| {
            u8::from_str_radix(byte, 16).unwrap_or_else(|_| panic!("bad hex byte {byte:?}"))
        })
        .collect()
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect::<Vec<_>>().join(" ")
}

#[test]
fn documented_wal_records_encode_to_their_hex() {
    let blocks = fenced_blocks(DOC, "wal-record");
    assert_eq!(blocks.len(), 4, "STORAGE.md documents a put, a remove, a wildcard, and an append");
    for block in blocks {
        let (header, body) = block.split_once('\n').expect("header line then hex");
        let generation: u64 =
            field(header, "generation").expect("header names a generation").parse().unwrap();
        let kind = header.split_whitespace().next().expect("header names a kind");
        let op = match kind {
            "put" => {
                let payload = field(header, "payload").expect("put has a payload");
                assert!(payload.len().is_multiple_of(2), "payload hex has whole bytes");
                WalOp::Put {
                    id: field(header, "id").expect("put has an id").parse().unwrap(),
                    payload: (0..payload.len())
                        .step_by(2)
                        .map(|i| u8::from_str_radix(&payload[i..i + 2], 16).expect("payload hex"))
                        .collect(),
                }
            }
            "remove" => WalOp::Remove { id: field(header, "id").unwrap().parse().unwrap() },
            "wildcard" => WalOp::Wildcard,
            "append" => {
                let payload = field(header, "payload").expect("append has a payload");
                assert!(payload.len().is_multiple_of(2), "payload hex has whole bytes");
                WalOp::Append {
                    id: field(header, "id").expect("append has an id").parse().unwrap(),
                    payload: (0..payload.len())
                        .step_by(2)
                        .map(|i| u8::from_str_radix(&payload[i..i + 2], 16).expect("payload hex"))
                        .collect(),
                }
            }
            other => panic!("unknown wal-record kind {other:?} in docs/STORAGE.md"),
        };
        let record = WalRecord { generation, op };
        let documented = parse_hex(body);
        assert_eq!(
            hex(&record.encode()),
            hex(&documented),
            "documented bytes for {header:?} match the encoder"
        );
        let decoded = WalRecord::decode_body(&documented[8..]).expect("documented body decodes");
        assert_eq!(decoded, record, "documented bytes decode back to the same record");
    }
}

#[test]
fn documented_storage_keys_are_the_real_ones() {
    let blocks = fenced_blocks(DOC, "storage-keys");
    assert_eq!(blocks.len(), 1, "STORAGE.md has one storage-keys block");
    let documented: Vec<&str> = blocks[0].lines().map(str::trim).collect();
    assert_eq!(
        documented,
        vec![MANIFEST_KEY, WAL_KEY, &segment_key(42), &docs_key(42)],
        "the documented keyspace matches the store's key builders"
    );
}
