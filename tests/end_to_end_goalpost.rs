//! End-to-end integration: the §4.4 goal-post fever workflow across every
//! crate — generate, preprocess, ingest, index, query, verify closure under
//! feature-preserving transformations.

use saq::core::query::{evaluate, QuerySpec};
use saq::core::store::{SequenceStore, StoreConfig};
use saq::core::Transform;
use saq::preprocess::{add_gaussian_noise, Pipeline};
use saq::sequence::generators::{goalpost, peaks, GoalpostSpec, PeaksSpec};

const GOALPOST: &str = "0* 1+ (-1)+ 0* 1+ (-1)+ 0*";

#[test]
fn ward_query_full_pipeline() {
    let mut store = SequenceStore::new(StoreConfig::default()).unwrap();
    let pipeline = Pipeline::standard();

    // Two-peak patients (with sensor noise, cleaned by the pipeline)...
    let mut expected = Vec::new();
    for seed in 0..5u64 {
        let raw = add_gaussian_noise(
            &goalpost(GoalpostSpec { seed, ..GoalpostSpec::default() }),
            0.2,
            seed,
        );
        let clean = pipeline.apply(&raw);
        expected.push(store.insert(&clean).unwrap());
    }
    // ... and confounders.
    let one = pipeline.apply(&peaks(PeaksSpec { centers: vec![12.0], ..PeaksSpec::default() }));
    let three = pipeline
        .apply(&peaks(PeaksSpec { centers: vec![5.0, 12.0, 19.0], ..PeaksSpec::default() }));
    let id_one = store.insert(&one).unwrap();
    let id_three = store.insert(&three).unwrap();

    let outcome = evaluate(&store, &QuerySpec::Shape { pattern: GOALPOST.into() }).unwrap();
    for id in &expected {
        assert!(outcome.exact.contains(id), "two-peak patient {id} missed");
    }
    assert!(!outcome.exact.contains(&id_one));
    assert!(!outcome.exact.contains(&id_three));
}

#[test]
fn query_closed_under_feature_preserving_transforms() {
    // §2.2's closure requirement, verified through the whole stack: every
    // figure-5 transformation of a member of S is still an exact match.
    let mut store = SequenceStore::new(StoreConfig::default()).unwrap();
    let base = goalpost(GoalpostSpec::default());
    let mut ids = vec![store.insert(&base).unwrap()];
    for (_, t) in Transform::figure5_suite() {
        ids.push(store.insert(&t.apply(&base).unwrap()).unwrap());
    }
    let outcome = evaluate(&store, &QuerySpec::Shape { pattern: GOALPOST.into() }).unwrap();
    for id in ids {
        assert!(outcome.exact.contains(&id), "transformed member {id} not exact");
    }
}

#[test]
fn approximate_tier_orders_by_deviation() {
    let mut store = SequenceStore::new(StoreConfig::default()).unwrap();
    let two = store.insert(&goalpost(GoalpostSpec::default())).unwrap();
    let one =
        store.insert(&peaks(PeaksSpec { centers: vec![12.0], ..PeaksSpec::default() })).unwrap();
    let four = store
        .insert(&peaks(PeaksSpec { centers: vec![3.0, 9.0, 15.0, 21.0], ..PeaksSpec::default() }))
        .unwrap();

    let out = evaluate(&store, &QuerySpec::PeakCount { count: 2, tolerance: 2 }).unwrap();
    assert_eq!(out.exact, vec![two]);
    let ids: Vec<u64> = out.approximate.iter().map(|m| m.id).collect();
    assert_eq!(ids, vec![one, four], "sorted by deviation then id: {out:?}");
    assert!(out.approximate[0].deviation < out.approximate[1].deviation);
}

#[test]
fn representation_supports_drill_down_reconstruction() {
    // The paper keeps raw data archivally "when finer resolution is
    // needed"; the representation itself reconstructs within epsilon.
    let store_cfg = StoreConfig { epsilon: 0.5, ..StoreConfig::default() };
    let mut store = SequenceStore::new(store_cfg).unwrap();
    let log = goalpost(GoalpostSpec::default());
    let id = store.insert(&log).unwrap();
    let entry = store.get(id).unwrap();
    let dev = entry.series.max_deviation_from(&log);
    assert!(dev <= 0.5 + 1e-9, "representation dev {dev}");
    let rec = entry.series.reconstruct(log.len()).unwrap();
    assert_eq!(rec.len(), log.len());
}
