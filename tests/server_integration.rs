//! End-to-end `saqd` coverage over real sockets: N concurrent clients,
//! one coalesced dispatch wave, snapshot-pinned sessions racing a live
//! writer, and the wire protocol's stable error codes.
//!
//! Determinism: the coalescing assertions use `max_wave = N` plus a wave
//! window far wider than thread-startup jitter, so the dispatcher
//! provably holds the wave open until all N in-flight queries join it —
//! the test never depends on lucky timing.

use saq::archive::{ArchiveScanEngine, ArchiveStore, Medium};
use saq::core::algebra::QueryEngine as _;
use saq::core::store::StoreConfig;
use saq::core::QueryRequest;
use saq::engine::EngineConfig;
use saq::sequence::generators::{goalpost, peaks, random_walk, GoalpostSpec, PeaksSpec};
use saq::server::protocol::{read_frame, write_frame};
use saq::server::{SaqClient, Saqd, SaqdConfig};
use std::io::BufReader;
use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// A mixed 24-sequence archive: goalposts, spike trains, random walks.
fn corpus() -> ArchiveStore {
    let mut archive = ArchiveStore::new(Medium::memory());
    for i in 0..24u64 {
        let seq = match i % 4 {
            0 => goalpost(GoalpostSpec { seed: i, noise: 0.12, ..GoalpostSpec::default() }),
            1 => peaks(PeaksSpec {
                centers: vec![5.0, 12.0, 19.0],
                seed: i,
                noise: 0.1,
                ..PeaksSpec::default()
            }),
            2 => peaks(PeaksSpec {
                centers: vec![12.0],
                seed: i,
                noise: 0.2,
                ..PeaksSpec::default()
            }),
            _ => random_walk(49, 0.0, 0.25, i),
        };
        archive.put(i, seq);
    }
    archive
}

/// Six scan-heavy queries, one per client: distinct predicates, so the
/// wave shares fetches (one pass over the archive) without sharing leaf
/// results.
const QUERIES: [&str; 6] = [
    "steepness all >= 0.15 slack 0.1",
    "steepness all >= 0.2 slack 0.1",
    "steepness any >= 0.8 slack 0.2",
    "peaks = 2 tol 1",
    "peaks = 1 tol 0 and steepness any >= 0.3 slack 0.2",
    "not peaks = 3 tol 0",
];

/// An engine whose feature cache holds a quarter of the archive: serial
/// queries thrash it (every pass refetches everything), which is exactly
/// the workload wave coalescing exists to amortize.
fn thrashing_engine(archive_len: usize) -> EngineConfig {
    EngineConfig {
        workers: 2,
        shards: 4,
        cache_capacity: archive_len / 4,
        ..EngineConfig::default()
    }
}

#[test]
fn one_coalesced_wave_answers_all_clients_with_fewer_fetches_than_serial() {
    let archive = corpus();
    let n_clients = QUERIES.len();
    let n_seqs = archive.len() as u64;

    // Phase 1 — coalesced: all clients fire inside one wide-open wave.
    let server = Saqd::spawn(
        archive.clone(),
        SaqdConfig {
            max_wave: n_clients,
            wave_window: Duration::from_secs(5),
            engine: thrashing_engine(archive.len()),
            ..SaqdConfig::default()
        },
    )
    .unwrap();
    let fetches_before = archive.fetch_count();
    let barrier = Arc::new(Barrier::new(n_clients));
    let handles: Vec<_> = QUERIES
        .iter()
        .map(|&text| {
            let addr = server.addr();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                let mut client = SaqClient::connect(addr).unwrap();
                barrier.wait();
                let resp = client.query(&QueryRequest::saql(text).with_stats()).unwrap();
                (text, resp, client.last_wave())
            })
        })
        .collect();
    let answers: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let wave_fetches = archive.fetch_count() - fetches_before;

    // Every client was served by the same full wave, off one snapshot.
    let snapshot = answers[0].1.snapshot.unwrap();
    for (text, resp, wave) in &answers {
        assert_eq!(*wave, n_clients as u64, "`{text}` missed the wave");
        assert_eq!(resp.snapshot.unwrap(), snapshot, "`{text}` ran off another snapshot");
    }
    let metrics = server.metrics();
    assert_eq!(metrics.waves, 1, "one dispatch wave for the whole burst");
    assert_eq!(metrics.queries, n_clients as u64);
    assert_eq!(metrics.max_wave, n_clients as u64);
    assert_eq!(wave_fetches, n_seqs, "the wave pays one fetch per archived sequence");

    // Per-snapshot oracle: the sequential scan engine, pinned to the
    // snapshot the server reported, must agree hit for hit.
    let oracle = ArchiveScanEngine::pinned(archive.snapshot(), StoreConfig::default());
    for (text, resp, _) in &answers {
        let expected = oracle.request(&QueryRequest::saql(*text)).unwrap();
        assert_eq!(resp.outcome, expected.outcome, "oracle disagrees on `{text}`");
    }
    server.shutdown();

    // Phase 2 — serial: a zero-width window turns coalescing off, and the
    // same six queries each pay their own thrashed pass over the archive.
    let serial = Saqd::spawn(
        archive.clone(),
        SaqdConfig {
            max_wave: n_clients,
            wave_window: Duration::ZERO,
            engine: thrashing_engine(archive.len()),
            ..SaqdConfig::default()
        },
    )
    .unwrap();
    let fetches_before = archive.fetch_count();
    let mut client = SaqClient::connect(serial.addr()).unwrap();
    for text in QUERIES {
        let resp = client.query(&QueryRequest::saql(text)).unwrap();
        assert_eq!(client.last_wave(), 1, "zero window must not coalesce");
        let expected = oracle.request(&QueryRequest::saql(text)).unwrap();
        assert_eq!(resp.outcome, expected.outcome, "serial result drifted on `{text}`");
    }
    let serial_fetches = archive.fetch_count() - fetches_before;
    assert_eq!(serial.metrics().waves, n_clients as u64);
    assert!(
        serial_fetches >= 3 * wave_fetches,
        "coalescing should amortize fetches: serial {serial_fetches} vs wave {wave_fetches}"
    );
    serial.shutdown();
}

#[test]
fn pinned_sessions_refuse_a_moved_archive_over_the_wire() {
    let archive = corpus();
    let server = Saqd::spawn(archive.clone(), SaqdConfig::default()).unwrap();
    let mut client = SaqClient::connect(server.addr()).unwrap();

    let pinned_at = client.pin().unwrap();
    let before = client.query(&QueryRequest::saql("peaks = 2 tol 0")).unwrap();
    assert_eq!(before.snapshot.unwrap(), pinned_at);

    // A writer advances the archive through its own handle mid-session.
    let mut writer = archive.clone();
    writer.put(1000, goalpost(GoalpostSpec { seed: 424_242, ..GoalpostSpec::default() }));

    let err = client.query(&QueryRequest::saql("peaks = 2 tol 0")).unwrap_err();
    assert_eq!(err.code(), 8, "stale pin must refuse, not answer: {err}");
    assert!(err.to_string().contains("snapshot mismatch"), "{err}");

    // Unpinned, the same session reads the new generation; an explicit
    // per-request pin at the stale ref still refuses.
    client.unpin().unwrap();
    let after = client.query(&QueryRequest::saql("peaks = 2 tol 0")).unwrap();
    assert!(after.outcome.exact.contains(&1000), "unpinned reads the writer's insert");
    let err = client.query(&QueryRequest::saql("peaks = 2 tol 0").pinned(pinned_at)).unwrap_err();
    assert_eq!(err.code(), 8, "{err}");

    // pin_at re-pins across sessions: a new connection pinned to the
    // current ref keeps answering it.
    let current = after.snapshot.unwrap();
    let mut other = SaqClient::connect(server.addr()).unwrap();
    assert_eq!(other.pin_at(current).unwrap(), current);
    assert_eq!(other.query(&QueryRequest::saql("peaks = 2 tol 0")).unwrap().outcome, after.outcome);
    server.shutdown();
}

#[test]
fn wire_errors_carry_stable_codes_and_caret_diagnostics() {
    let server = Saqd::spawn(corpus(), SaqdConfig::default()).unwrap();

    // SAQL typos come back as code 7 with the caret rendering intact.
    let mut client = SaqClient::connect(server.addr()).unwrap();
    let err = client.query(&QueryRequest::saql("peaks == 2")).unwrap_err();
    assert_eq!(err.code(), 7);
    assert!(err.to_string().contains('^'), "caret diagnostic lost: {err}");

    // Unknown verbs and malformed payloads are protocol errors (code 9),
    // spoken raw so the framing itself is exercised.
    let stream = TcpStream::connect(server.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    for garbage in ["BOGUS SAQP/1\n\nhello", "no verb line here"] {
        write_frame(&mut writer, garbage).unwrap();
        let reply = read_frame(&mut reader).unwrap().unwrap();
        let first = reply.lines().next().unwrap();
        assert_eq!(first, "ERR SAQP/1", "raw reply: {reply}");
        assert!(reply.contains("code: 9"), "raw reply: {reply}");
    }
    server.shutdown();
}

#[test]
fn remote_engine_answers_like_local_engines_through_the_trait() {
    use saq::core::algebra::QueryExpr;
    use saq::server::RemoteEngine;

    let archive = corpus();
    let server = Saqd::spawn(archive.clone(), SaqdConfig::default()).unwrap();
    let remote = RemoteEngine::connect(server.addr()).unwrap();
    let local = ArchiveScanEngine::new(&archive, StoreConfig::default());

    let exprs = [
        QueryExpr::peak_count(2, 1).and(QueryExpr::min_steepness(0.2, 0.1)),
        QueryExpr::peak_count(1, 0).or(QueryExpr::peak_count(3, 0)).top_k(4),
        QueryExpr::peak_count(2, 0).negate(),
    ];
    for expr in &exprs {
        assert_eq!(
            remote.execute(expr).unwrap(),
            local.execute(expr).unwrap(),
            "remote vs local on {expr:?}"
        );
    }
    // The unified request surface carries stats and explain across the
    // wire; the snapshot ref matches what PING reports.
    let resp =
        remote.request(&QueryRequest::expr(exprs[0].clone()).with_stats().with_explain()).unwrap();
    assert!(resp.stats.unwrap().entries_scanned > 0);
    assert!(resp.explain.unwrap().contains("And"));
    assert_eq!(resp.snapshot, remote.snapshot_ref());
    server.shutdown();
}

/// A server restarted on the same `--data-dir` serves byte-identical
/// results at the same pinned `(instance, generation)` snapshot, and
/// generations stay monotonic across the restart.
#[test]
fn restarted_server_serves_byte_identical_results_from_its_data_dir() {
    use saq::archive::DurabilityConfig;
    use saq::server::RemoteEngine;

    let dir = std::env::temp_dir().join(format!("saq_restart_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let open =
        || ArchiveStore::open(dir.clone(), Medium::memory(), DurabilityConfig::default()).unwrap();

    // Ingest the corpus, fold most of it into a segment, then leave two
    // puts in the WAL so recovery exercises segment + replay together.
    let template = corpus();
    let snap = template.snapshot();
    let mut archive = open();
    for &id in template.ids().iter() {
        archive.put(id, snap.fetch(id).unwrap().0.clone());
    }
    archive.compact().unwrap();
    archive.put(2, random_walk(49, 0.0, 0.25, 99));
    archive.put(7, random_walk(49, 0.0, 0.25, 100));
    let stamp = (archive.instance_id(), archive.generation());

    let run = |archive: ArchiveStore| {
        let server = Saqd::spawn(archive, SaqdConfig::default()).unwrap();
        let mut client = SaqClient::connect(server.addr()).unwrap();
        let answers: Vec<_> =
            QUERIES.iter().map(|&text| client.query(&QueryRequest::saql(text)).unwrap()).collect();
        server.shutdown();
        answers
    };
    let before = run(archive.clone());
    drop(archive);

    // "Restart": a fresh open of the same directory.
    let mut archive = open();
    assert_eq!(
        (archive.instance_id(), archive.generation()),
        stamp,
        "recovery reproduces the pre-shutdown snapshot stamp"
    );
    let after = run(archive.clone());
    for (text, (a, b)) in QUERIES.iter().zip(before.iter().zip(&after)) {
        assert_eq!(a.outcome, b.outcome, "`{text}` differs across the restart");
        assert_eq!(a.snapshot, b.snapshot, "`{text}` pinned a different snapshot");
    }

    // The recovered archive also answers identically through the remote
    // engine trait and the local scan engine, at the same pin.
    {
        use saq::core::algebra::QueryExpr;
        let server = Saqd::spawn(archive.clone(), SaqdConfig::default()).unwrap();
        let remote = RemoteEngine::connect(server.addr()).unwrap();
        let local = ArchiveScanEngine::new(&archive, StoreConfig::default());
        let expr = QueryExpr::peak_count(2, 1).and(QueryExpr::min_steepness(0.2, 0.1));
        assert_eq!(remote.execute(&expr).unwrap(), local.execute(&expr).unwrap());
        server.shutdown();
    }

    // Writes after recovery continue the generation sequence instead of
    // restarting it — id-keyed caches can never confuse the two runs.
    archive.put(30, random_walk(49, 0.0, 0.25, 101));
    assert_eq!(archive.generation(), stamp.1 + 1, "generations are monotonic across restart");
    let _ = std::fs::remove_dir_all(&dir);
}
