//! Crash-consistency of the durable archive: the kill-point harness.
//!
//! A mutation script runs against a durable archive on a
//! [`MemoryBackend`]; the test then simulates every crash the storage
//! contract promises to survive — the write-ahead log truncated at
//! **every record boundary**, torn mid-record, and corrupted by a bit
//! flip at random offsets — by forking the backend's bytes and
//! reopening. Every reopen must recover a **consistent prefix**: the
//! exact archive contents at the generation of the last surviving WAL
//! record (or the compaction base when nothing survives), never a blend,
//! never a torn value. A second reopen of the same bytes must agree with
//! the first (recovery truncates the damaged tail, so it is idempotent).
//!
//! `SAQ_PROP_DURABLE_CASES` raises the proptest case count (the CI
//! durability-stress job sets it).

mod common;

use common::mixed_sequence;
use proptest::prelude::*;
use saq::archive::{ArchiveScanEngine, ArchiveStore, DurabilityConfig, Medium};
use saq::core::algebra::{QueryEngine as _, QueryExpr};
use saq::core::store::StoreConfig;
use saq::durable::wal::{read_wal_bytes, WAL_KEY};
use saq::durable::{Backend, MemoryBackend};
use saq::engine::{EngineConfig, QueryEngine as ShardedEngine};
use saq::sequence::Point;
use std::collections::BTreeMap;
use std::sync::Arc;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// One scripted mutation against the durable archive.
#[derive(Debug, Clone, Copy)]
enum Op {
    Put { kind: u64, seed: u64, id: u64 },
    Remove { id: u64 },
    Append { id: u64, n: u64, seed: u64 },
    Wildcard,
    Compact,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Two put and two append arms bias the unweighted union toward the
    // content-carrying records.
    prop_oneof![
        (0u64..4, 0u64..1000, 0u64..10).prop_map(|(kind, seed, id)| Op::Put { kind, seed, id }),
        (0u64..4, 500u64..1500, 0u64..10).prop_map(|(kind, seed, id)| Op::Put { kind, seed, id }),
        (0u64..10).prop_map(|id| Op::Remove { id }),
        (0u64..10, 1u64..24, 0u64..1000).prop_map(|(id, n, seed)| Op::Append { id, n, seed }),
        (0u64..10, 1u64..24, 0u64..1000).prop_map(|(id, n, seed)| Op::Append { id, n, seed }),
        Just(Op::Wildcard),
        Just(Op::Compact),
    ]
}

/// A deterministic tail continuing from `last` with strictly increasing
/// timestamps — what one streaming append wave carries.
fn walk_tail(last: Point, n: u64, seed: u64) -> Vec<Point> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let (mut t, mut v) = (last.t, last.v);
    (0..n)
        .map(|_| {
            t += 1.0;
            v += ((next() % 100) as f64 - 49.5) / 25.0;
            Point::new(t, v)
        })
        .collect()
}

/// The oracle: archive contents (as raw points) after each generation,
/// plus the base generation of the last compaction.
struct Oracle {
    /// `states[g]` = contents at generation `g` (index 0 = empty).
    states: Vec<BTreeMap<u64, Vec<Point>>>,
    base_generation: u64,
}

/// Runs `ops` through a durable archive (manual compaction only) while
/// recording the oracle state at every generation.
fn run_script(ops: &[Op]) -> (ArchiveStore, Arc<MemoryBackend>, Oracle) {
    let backend = Arc::new(MemoryBackend::new());
    let config = DurabilityConfig { compact_after: 0, index_docs: None };
    let mut archive =
        ArchiveStore::open_backend(backend.clone() as Arc<dyn Backend>, Medium::memory(), config)
            .unwrap();
    let mut oracle =
        Oracle { states: vec![BTreeMap::new()], base_generation: archive.generation() };
    for &op in ops {
        let mut next = oracle.states.last().unwrap().clone();
        match op {
            Op::Put { kind, seed, id } => {
                let seq = mixed_sequence(kind, seed);
                next.insert(id, seq.points().to_vec());
                archive.put(id, seq);
            }
            Op::Remove { id } => {
                next.remove(&id);
                archive.remove(id);
            }
            Op::Append { id, n, seed } => {
                // Continue the stored tail (or start a fresh feed — an
                // append to an unknown id creates it).
                let start = next
                    .get(&id)
                    .map(|points| *points.last().unwrap())
                    .unwrap_or_else(|| Point::new(0.0, (seed % 5) as f64));
                let tail = walk_tail(start, n, seed);
                next.entry(id).or_default().extend_from_slice(&tail);
                archive.append_points(id, &tail);
            }
            Op::Wildcard => archive.mark_all_changed(),
            Op::Compact => {
                archive.compact().unwrap();
                oracle.base_generation = archive.generation();
                continue; // not a mutation: no generation bump
            }
        }
        oracle.states.push(next);
        assert_eq!(archive.generation() as usize + 1, oracle.states.len());
    }
    (archive, backend, oracle)
}

/// Reopens `backend` and asserts the recovered archive is exactly the
/// oracle state at `expect_generation`.
fn assert_recovers_to(backend: Arc<MemoryBackend>, oracle: &Oracle, expect_generation: u64) {
    let reopened = ArchiveStore::open_backend(
        backend.clone() as Arc<dyn Backend>,
        Medium::memory(),
        DurabilityConfig { compact_after: 0, index_docs: None },
    )
    .unwrap();
    let expected = &oracle.states[expect_generation as usize];
    assert_eq!(
        reopened.generation(),
        expect_generation,
        "recovery must land on the last surviving record's generation"
    );
    let ids: Vec<u64> = expected.keys().copied().collect();
    assert_eq!(reopened.ids(), ids, "recovered id set is the consistent prefix's");
    let snapshot = reopened.snapshot();
    for (id, points) in expected {
        let (seq, _) = snapshot.fetch(*id).expect("recovered id fetches");
        assert_eq!(seq.points(), points.as_slice(), "id {id} recovered bit-exactly");
    }
    drop(reopened);

    // Recovery truncated the damage, so a second recovery of the same
    // bytes sees a clean log and lands in the same place.
    let again = ArchiveStore::open_backend(
        backend as Arc<dyn Backend>,
        Medium::memory(),
        DurabilityConfig { compact_after: 0, index_docs: None },
    )
    .unwrap();
    assert_eq!(again.generation(), expect_generation, "recovery is idempotent");
    assert_eq!(again.ids(), ids);
}

/// The generation recovery must land on when the log is cut at byte
/// `cut`: the last record wholly inside the prefix, else the base.
fn generation_at_cut(ends: &[u64], generations: &[u64], base: u64, cut: u64) -> u64 {
    ends.iter()
        .zip(generations)
        .filter(|(end, _)| **end <= cut)
        .map(|(_, g)| *g)
        .next_back()
        .unwrap_or(base)
}

/// Exhaustive kill points on a fixed script: truncation at every record
/// boundary, one byte short of every boundary (torn), and one byte into
/// every record — plus a corrupting flip inside every record.
#[test]
fn every_wal_boundary_recovers_a_consistent_prefix() {
    let ops: Vec<Op> = (0..9)
        .map(|i| match i {
            2 => Op::Append { id: 0, n: 6, seed: 41 },
            3 => Op::Remove { id: 1 },
            5 => Op::Wildcard,
            6 => Op::Append { id: 5, n: 3, seed: 42 }, // creates id 5
            _ => Op::Put { kind: i, seed: 31 * i + 7, id: i % 4 },
        })
        .collect();
    let (archive, backend, oracle) = run_script(&ops);
    drop(archive);

    let wal = backend.get(WAL_KEY).unwrap().unwrap_or_default();
    let readback = read_wal_bytes(&wal);
    assert!(!readback.tail_discarded, "the live log is clean");
    assert_eq!(readback.records.len(), ops.len(), "one record per mutation");
    let generations: Vec<u64> = readback.records.iter().map(|r| r.generation).collect();

    let mut boundaries: Vec<u64> = vec![0];
    boundaries.extend(&readback.ends);
    for &cut in &boundaries {
        // A crash that lost everything past this boundary.
        let fork = Arc::new(backend.fork());
        fork.truncate(WAL_KEY, cut).unwrap();
        let expect = generation_at_cut(&readback.ends, &generations, oracle.base_generation, cut);
        assert_recovers_to(fork, &oracle, expect);

        for torn in [cut.saturating_sub(1), cut + 1] {
            if torn == 0 || torn >= wal.len() as u64 {
                continue;
            }
            // A crash mid-record: the torn record is discarded whole.
            let fork = Arc::new(backend.fork());
            fork.truncate(WAL_KEY, torn).unwrap();
            let expect =
                generation_at_cut(&readback.ends, &generations, oracle.base_generation, torn);
            assert_recovers_to(fork, &oracle, expect);
        }
    }

    // A flipped byte anywhere in a record kills that record and its
    // suffix, keeping the records before it.
    for (i, &end) in readback.ends.iter().enumerate() {
        let start = if i == 0 { 0 } else { readback.ends[i - 1] };
        for offset in [start, (start + end) / 2, end - 1] {
            let fork = Arc::new(backend.fork());
            fork.poke(WAL_KEY, offset, wal[offset as usize] ^ 0x5A);
            let expect = if i == 0 { oracle.base_generation } else { generations[i - 1] };
            assert_recovers_to(fork, &oracle, expect);
        }
    }
}

/// Append waves are recovery units: cutting the log at every single byte
/// offset recovers to an exact prefix of acknowledged waves — the stored
/// sequence is always the base plus whole appended tails in order, never
/// a torn one.
#[test]
fn append_waves_recover_to_an_exact_prefix_at_every_byte() {
    let mut ops = vec![Op::Put { kind: 2, seed: 9, id: 0 }];
    ops.extend((0..8).map(|i| Op::Append { id: i % 3, n: 4 + i % 5, seed: 100 + i }));
    let (archive, backend, oracle) = run_script(&ops);
    drop(archive);

    let wal = backend.get(WAL_KEY).unwrap().unwrap_or_default();
    let readback = read_wal_bytes(&wal);
    assert_eq!(readback.records.len(), ops.len(), "one record per wave");
    let generations: Vec<u64> = readback.records.iter().map(|r| r.generation).collect();
    for cut in 0..=wal.len() as u64 {
        let fork = Arc::new(backend.fork());
        fork.truncate(WAL_KEY, cut).unwrap();
        let expect = generation_at_cut(&readback.ends, &generations, oracle.base_generation, cut);
        assert_recovers_to(fork, &oracle, expect);
    }
}

/// Reopening a compacted store reproduces byte-identical query results
/// at the same pinned generation across the scan and sharded engines.
#[test]
fn reopened_store_answers_queries_byte_identically() {
    let ops: Vec<Op> = (0..9)
        .map(|i| Op::Put { kind: i, seed: 100 + i, id: i })
        .chain([Op::Compact, Op::Put { kind: 1, seed: 999, id: 2 }])
        .collect();
    let (archive, backend, _) = run_script(&ops);
    let exprs = [
        QueryExpr::shape(common::GOALPOST),
        QueryExpr::peak_count(2, 1).or(QueryExpr::peak_interval(10, 3)),
        QueryExpr::min_steepness(0.6, 0.2).and(QueryExpr::id_range(0, 6)),
    ];
    let pinned = (archive.instance_id(), archive.generation());
    let reference: Vec<_> = {
        let scan = ArchiveScanEngine::new(&archive, StoreConfig::default());
        exprs.iter().map(|e| scan.execute(e).unwrap()).collect()
    };
    drop(archive);

    let reopened = ArchiveStore::open_backend(
        backend as Arc<dyn Backend>,
        Medium::memory(),
        DurabilityConfig::default(),
    )
    .unwrap();
    assert_eq!(
        (reopened.instance_id(), reopened.generation()),
        pinned,
        "recovery reproduces the exact pre-shutdown stamp"
    );
    let scan = ArchiveScanEngine::new(&reopened, StoreConfig::default());
    let sharded = ShardedEngine::new(EngineConfig::default()).unwrap();
    let bound = sharded.bind(&reopened);
    for (expr, expected) in exprs.iter().zip(&reference) {
        assert_eq!(&scan.execute(expr).unwrap(), expected, "scan engine differs after reopen");
        assert_eq!(&bound.execute(expr).unwrap(), expected, "sharded engine differs after reopen");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        env_usize("SAQ_PROP_DURABLE_CASES", 8) as u32
    ))]

    /// Random scripts (with interleaved compactions), random crash
    /// offsets: recovery is always the consistent prefix the surviving
    /// log bytes name, for truncation and for corruption alike.
    #[test]
    fn random_crashes_recover_consistent_prefixes(
        ops in proptest::collection::vec(op_strategy(), 1..20),
        cuts in proptest::collection::vec((0u64..u64::MAX, 0u8..2), 1..8),
    ) {
        let (archive, backend, oracle) = run_script(&ops);
        drop(archive);
        let wal = backend.get(WAL_KEY).unwrap().unwrap_or_default();
        let readback = read_wal_bytes(&wal);
        let generations: Vec<u64> = readback.records.iter().map(|r| r.generation).collect();

        for &(raw, corrupt) in &cuts {
            if wal.is_empty() {
                break;
            }
            let offset = raw % wal.len() as u64;
            let fork = Arc::new(backend.fork());
            let expect = if corrupt == 1 {
                // Flip a byte: the record containing `offset` dies.
                fork.poke(WAL_KEY, offset, wal[offset as usize] ^ 0x5A);
                let survivors = readback.ends.iter().filter(|end| **end <= offset).count();
                if survivors == 0 {
                    oracle.base_generation
                } else {
                    generations[survivors - 1]
                }
            } else {
                fork.truncate(WAL_KEY, offset).unwrap();
                generation_at_cut(&readback.ends, &generations, oracle.base_generation, offset)
            };
            assert_recovers_to(fork, &oracle, expect);
        }
    }
}
