//! Property-based tests of the baseline comparators: FFT/naive-DFT
//! agreement, Parseval energy conservation, and the F-index's
//! no-false-dismissal lower-bound guarantee.

use proptest::prelude::*;
use saq::baseline::dft::{fft, naive_dft};
use saq::baseline::euclid::{euclidean_distance, max_pointwise_distance};
use saq::baseline::findex::FeatureVector;
use saq::sequence::Sequence;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fft_agrees_with_naive(values in prop::collection::vec(-10.0f64..10.0, 1..5usize)
        .prop_map(|seed| {
            let n = 1usize << (seed.len() + 2);
            (0..n).map(|i| seed[i % seed.len()] * (1.0 + (i as f64 * 0.3).cos())).collect::<Vec<f64>>()
        })
    ) {
        let a = naive_dft(&values);
        let b = fft(&values);
        for (u, v) in a.iter().zip(&b) {
            prop_assert!((u.re - v.re).abs() < 1e-6 && (u.im - v.im).abs() < 1e-6);
        }
    }

    #[test]
    fn parseval_holds(values in prop::collection::vec(-10.0f64..10.0, 1..4usize)
        .prop_map(|seed| {
            let n = 1usize << (seed.len() + 3);
            (0..n).map(|i| seed[i % seed.len()] + i as f64 * 0.01).collect::<Vec<f64>>()
        })
    ) {
        let n = values.len() as f64;
        let time: f64 = values.iter().map(|v| v * v).sum();
        let freq: f64 = fft(&values).iter().map(|c| c.re * c.re + c.im * c.im).sum::<f64>() / n;
        prop_assert!((time - freq).abs() < 1e-6 * (1.0 + time));
    }

    #[test]
    fn linf_lower_bounds_l2(
        a in prop::collection::vec(-20.0f64..20.0, 4..40),
        noise in prop::collection::vec(-5.0f64..5.0, 4..40),
    ) {
        let n = a.len().min(noise.len());
        let sa = Sequence::from_samples(&a[..n]).unwrap();
        let vb: Vec<f64> = a[..n].iter().zip(&noise[..n]).map(|(x, e)| x + e).collect();
        let sb = Sequence::from_samples(&vb).unwrap();
        let linf = max_pointwise_distance(&sa, &sb).unwrap();
        let l2 = euclidean_distance(&sa, &sb).unwrap();
        prop_assert!(linf <= l2 + 1e-9);
        prop_assert!(l2 <= linf * (n as f64).sqrt() + 1e-9);
    }

    #[test]
    fn findex_no_false_dismissals_under_noise(
        base in prop::collection::vec(-10.0f64..10.0, 16..48),
        sigma in 0.0f64..0.5,
    ) {
        // Feature distance of a noisy variant is small whenever the noisy
        // variant is close in (normalized) time domain — keeping features
        // cannot *increase* distance (Parseval truncation only discards
        // energy). We verify the lower-bound direction empirically.
        let sa = Sequence::from_samples(&base).unwrap();
        let vb: Vec<f64> = base.iter().enumerate()
            .map(|(i, v)| v + sigma * ((i * 31 % 7) as f64 - 3.0) / 3.0)
            .collect();
        let sb = Sequence::from_samples(&vb).unwrap();
        let k = 8;
        let fa = FeatureVector::extract(&sa, k);
        let fb = FeatureVector::extract(&sb, k);
        // Full-spectrum feature distance with k = n upper-bounds the k=8 one.
        let full_k = base.len().next_power_of_two();
        let fa_full = FeatureVector::extract(&sa, full_k);
        let fb_full = FeatureVector::extract(&sb, full_k);
        prop_assert!(fa.distance(&fb) <= fa_full.distance(&fb_full) + 1e-9);
    }
}
