//! Incremental index maintenance ground truth: after an arbitrary
//! interleaving of `insert` / `remove` / `reinsert` on a [`SequenceStore`],
//! the store's [`IndexSet`] must be *identical* to one rebuilt from
//! scratch over the surviving entries — same documents, same postings,
//! same statistics — and query-algebra results over the mutated store must
//! match a pure scan oracle (so the incrementally maintained index paths
//! can never drift from the entries).

use proptest::prelude::*;
use saq::core::algebra::{IndexCaps, QueryEngine as _, QueryExpr, StoreEngine};
use saq::core::store::{SequenceStore, StoreConfig, StoredEntry};
use saq::index::{IndexDoc, IndexSet, SequenceIndex as _};
use saq::sequence::generators::{goalpost, peaks, random_walk, GoalpostSpec, PeaksSpec};
use saq::sequence::Sequence;
use std::collections::BTreeMap;

const GOALPOST: &str = "0* 1+ (-1)+ 0* 1+ (-1)+ 0*";

fn mixed_sequence(kind: u64, seed: u64) -> Sequence {
    match kind % 4 {
        0 => goalpost(GoalpostSpec { seed, noise: 0.15, ..GoalpostSpec::default() }),
        1 => peaks(PeaksSpec {
            centers: vec![4.0, 11.0, 19.0],
            seed,
            noise: 0.1,
            ..PeaksSpec::default()
        }),
        2 => peaks(PeaksSpec { centers: vec![12.0], seed, noise: 0.2, ..PeaksSpec::default() }),
        _ => random_walk(49, 0.0, 0.3, seed),
    }
}

/// One mutation of the interleaving. `pick` selects the victim of a
/// remove/reinsert among the live ids.
#[derive(Debug, Clone, Copy)]
enum Op {
    Insert { kind: u64, seed: u64 },
    Remove { pick: u64 },
    Reinsert { pick: u64, kind: u64, seed: u64 },
}

fn op_strategy() -> BoxedStrategy<Op> {
    prop_oneof![
        (0u64..4, 0u64..10_000).prop_map(|(kind, seed)| Op::Insert { kind, seed }),
        (0u64..64).prop_map(|pick| Op::Remove { pick }),
        (0u64..64, 0u64..4, 0u64..10_000).prop_map(|(pick, kind, seed)| Op::Reinsert {
            pick,
            kind,
            seed
        }),
    ]
    .boxed()
}

/// Applies the ops, mirroring the surviving raw sequences in `live`.
fn apply(ops: &[Op], store: &mut SequenceStore, live: &mut BTreeMap<u64, Sequence>) {
    for op in ops {
        match *op {
            Op::Insert { kind, seed } => {
                let seq = mixed_sequence(kind, seed);
                let id = store.insert(&seq).unwrap();
                live.insert(id, seq);
            }
            Op::Remove { pick } => {
                let Some(&id) = live.keys().nth(pick as usize % live.len().max(1)) else {
                    continue;
                };
                store.remove(id).unwrap();
                live.remove(&id);
            }
            Op::Reinsert { pick, kind, seed } => {
                let Some(&id) = live.keys().nth(pick as usize % live.len().max(1)) else {
                    continue;
                };
                let seq = mixed_sequence(kind, seed);
                store.reinsert(id, &seq).unwrap();
                live.insert(id, seq);
            }
        }
    }
}

/// The oracle: an [`IndexSet`] rebuilt from scratch over the live entries.
fn rebuild(live: &BTreeMap<u64, Sequence>, config: &StoreConfig) -> IndexSet {
    let mut set = IndexSet::new();
    for (&id, seq) in live {
        let entry = StoredEntry::compute(seq, config).unwrap();
        let buckets = entry.peaks.interval_buckets();
        set.insert_doc(
            id,
            &IndexDoc {
                symbols: &entry.symbols,
                interval_buckets: &buckets,
                peak_count: entry.peaks.len(),
            },
        );
    }
    set
}

/// Structural equality of the store's incrementally maintained indexes
/// against the rebuilt oracle.
fn assert_index_state_matches(
    store: &SequenceStore,
    oracle: &IndexSet,
    live: &BTreeMap<u64, Sequence>,
) -> Result<(), TestCaseError> {
    let set = store.index_set();
    prop_assert_eq!(set.doc_count(), live.len());
    prop_assert_eq!(set.doc_count(), oracle.doc_count());
    // Pattern index: same documents, id by id (and no stale survivors).
    for &id in live.keys() {
        prop_assert_eq!(
            set.pattern().symbols_of(id),
            oracle.pattern().symbols_of(id),
            "pattern doc of id {}",
            id
        );
    }
    prop_assert_eq!(set.pattern().len(), oracle.pattern().len());
    // Inverted file: identical bucket-by-bucket contents.
    prop_assert_eq!(set.interval().entries(), oracle.interval().entries());
    // Statistics snapshots (posting sizes, prefix counts, histograms).
    prop_assert_eq!(set.stats(), oracle.stats());
    Ok(())
}

/// Algebra results over the mutated store: the statistics-driven,
/// index-served engine must agree with a scan-only evaluation of the
/// same expressions (the naive oracle over the surviving entries).
fn assert_queries_match_scan_oracle(store: &SequenceStore) -> Result<(), TestCaseError> {
    let exprs = [
        QueryExpr::shape(GOALPOST),
        QueryExpr::peak_interval(8, 2),
        QueryExpr::peak_count(2, 1).and(QueryExpr::peak_interval(7, 2)),
        QueryExpr::shape(GOALPOST).or(QueryExpr::peak_count(1, 0)),
        QueryExpr::peak_count(3, 1).negate(),
    ];
    let indexed = StoreEngine::new(store);
    let scan = StoreEngine::with_caps(store, IndexCaps::none());
    for expr in &exprs {
        prop_assert_eq!(
            indexed.execute(expr).unwrap(),
            scan.execute(expr).unwrap(),
            "index-served vs scan oracle after mutations: {:?}",
            expr
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random insert/remove/reinsert interleavings: the incrementally
    /// maintained `IndexSet` equals a from-scratch rebuild, and queries
    /// over the mutated store match the scan oracle.
    #[test]
    fn interleaved_maintenance_matches_rebuild_oracle(
        ops in prop::collection::vec(op_strategy(), 4..40),
    ) {
        let mut store = SequenceStore::new(StoreConfig::default()).unwrap();
        let mut live = BTreeMap::new();
        apply(&ops, &mut store, &mut live);
        let oracle = rebuild(&live, &store.config());
        assert_index_state_matches(&store, &oracle, &live)?;
        assert_queries_match_scan_oracle(&store)?;
    }
}

/// A deterministic worst-case interleaving: remove and reinsert every id
/// at least once, ending on a store whose every index entry was touched
/// by incremental maintenance rather than initial ingestion.
#[test]
fn churned_store_equals_rebuilt_store() {
    let mut store = SequenceStore::new(StoreConfig::default()).unwrap();
    let mut live = BTreeMap::new();
    let mut ops: Vec<Op> = (0..10).map(|i| Op::Insert { kind: i, seed: 100 + i }).collect();
    for pick in 0..10 {
        ops.push(Op::Reinsert { pick, kind: pick + 1, seed: 500 + pick });
    }
    for pick in (0..10).step_by(2) {
        ops.push(Op::Remove { pick });
    }
    apply(&ops, &mut store, &mut live);
    assert_eq!(store.len(), 5);
    let oracle = rebuild(&live, &store.config());
    assert_eq!(store.index_set().stats(), oracle.stats());
    assert_eq!(store.interval_index().entries(), oracle.interval().entries());
    // And an emptied store leaves no residue at all.
    for &id in live.clone().keys() {
        store.remove(id).unwrap();
    }
    assert!(store.index_set().is_empty());
    assert_eq!(store.index_stats(), saq::index::IndexStats::default());
}
