//! Property-based tests of the query engine: agreement between the store's
//! indexed answers and first-principles recomputation, and soundness of the
//! conjunctive query language.

use proptest::prelude::*;
use saq::core::query::{evaluate, QuerySpec};
use saq::core::run_query;
use saq::core::store::{SequenceStore, StoreConfig};
use saq::sequence::generators::{peaks, PeaksSpec};
use saq::sequence::Sequence;

/// A corpus of peak trains with random peak counts (0..=4) and positions.
fn arb_corpus() -> impl Strategy<Value = Vec<(Sequence, usize)>> {
    prop::collection::vec(
        (0usize..=4, 0u64..1000).prop_map(|(k, seed)| {
            // Well-separated centers over 24h.
            let centers: Vec<f64> =
                (0..k).map(|i| 3.0 + i as f64 * (18.0 / (k as f64).max(4.0))).collect();
            let seq =
                peaks(PeaksSpec { centers, width: 0.9, noise: 0.0, seed, ..PeaksSpec::default() });
            (seq, k)
        }),
        1..8,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn peak_count_query_agrees_with_ground_truth(corpus in arb_corpus(), want in 0usize..=4) {
        let mut store = SequenceStore::new(StoreConfig::default()).unwrap();
        let mut truth = Vec::new();
        for (seq, k) in &corpus {
            let id = store.insert(seq).unwrap();
            truth.push((id, *k));
        }
        let out = evaluate(&store, &QuerySpec::PeakCount { count: want, tolerance: 0 }).unwrap();
        for (id, k) in &truth {
            // Detected peak count equals constructed count on clean,
            // well-separated trains; so exact-match sets agree.
            prop_assert_eq!(
                out.exact.contains(id),
                *k == want,
                "id {} built with {} peaks, queried {}",
                id, k, want
            );
        }
    }

    #[test]
    fn shape_query_equals_dfa_on_stored_symbols(corpus in arb_corpus()) {
        let mut store = SequenceStore::new(StoreConfig::default()).unwrap();
        let mut ids = Vec::new();
        for (seq, _) in &corpus {
            ids.push(store.insert(seq).unwrap());
        }
        let pattern = "0* 1+ (-1)+ 0* 1+ (-1)+ 0*";
        let out = evaluate(&store, &QuerySpec::Shape { pattern: pattern.into() }).unwrap();
        let dfa = saq::core::alphabet::parse_slope_pattern(pattern).unwrap().compile();
        for id in ids {
            let symbols = store.get(id).unwrap().symbols.clone();
            prop_assert_eq!(out.exact.contains(&id), dfa.is_match(&symbols));
        }
    }

    #[test]
    fn language_conjunction_is_intersection_of_clauses(
        corpus in arb_corpus(),
        a in 0usize..=4,
        b in 0usize..=4,
    ) {
        let mut store = SequenceStore::new(StoreConfig::default()).unwrap();
        for (seq, _) in &corpus {
            store.insert(seq).unwrap();
        }
        let qa = evaluate(&store, &QuerySpec::PeakCount { count: a, tolerance: 0 }).unwrap();
        let qb = evaluate(&store, &QuerySpec::PeakCount { count: b, tolerance: 0 }).unwrap();
        let both = run_query(&store, &format!("peaks = {a} and peaks = {b}")).unwrap();
        let expected: Vec<u64> = qa
            .exact
            .iter()
            .copied()
            .filter(|id| qb.exact.contains(id))
            .collect();
        prop_assert_eq!(both.exact, expected);
        prop_assert!(both.approximate.is_empty());
    }

    #[test]
    fn interval_query_hits_carry_in_band_intervals(
        corpus in arb_corpus(),
        target in 3i64..20,
        eps in 0i64..3,
    ) {
        let mut store = SequenceStore::new(StoreConfig::default()).unwrap();
        for (seq, _) in &corpus {
            store.insert(seq).unwrap();
        }
        let out = evaluate(
            &store,
            &QuerySpec::PeakInterval { interval: target, epsilon: eps },
        )
        .unwrap();
        for id in out.all_ids() {
            let buckets = store.get(id).unwrap().peaks.interval_buckets();
            prop_assert!(
                buckets.iter().any(|b| (b - target).abs() <= eps),
                "id {} buckets {:?} vs {}±{}",
                id, buckets, target, eps
            );
        }
    }
}
