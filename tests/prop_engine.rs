//! Equivalence of the sharded parallel batch engine with the sequential
//! query paths: for every query type, `saq-engine` with multiple workers
//! must return byte-identical result sets (same hits, same order) as both
//! its own single-pass sequential oracle and the store-level
//! `saq::core::query::evaluate`.

use proptest::prelude::*;
use saq::archive::{ArchiveStore, Medium};
use saq::core::algebra::QueryExpr;
use saq::core::query::{evaluate, QueryOutcome, QuerySpec};
use saq::core::store::{SequenceStore, StoreConfig};
use saq::core::QueryRequest;
use saq::engine::{BatchQuery, EngineConfig, QueryEngine};
use saq::sequence::generators::{goalpost, peaks, random_walk, GoalpostSpec, PeaksSpec};
use saq::sequence::Sequence;

/// Builds the same corpus into a representation store (ids assigned by the
/// store) and a raw archive (same ids), so both query paths see identical
/// id → sequence mappings.
fn ingest(corpus: &[Sequence]) -> (SequenceStore, ArchiveStore) {
    let mut store = SequenceStore::new(StoreConfig::default()).unwrap();
    let mut archive = ArchiveStore::new(Medium::memory());
    for seq in corpus {
        let id = store.insert(seq).unwrap();
        archive.put(id, seq.clone());
    }
    (store, archive)
}

fn mixed_sequence(kind: u64, seed: u64) -> Sequence {
    match kind % 4 {
        0 => goalpost(GoalpostSpec { seed, noise: 0.15, ..GoalpostSpec::default() }),
        1 => peaks(PeaksSpec {
            centers: vec![4.0, 11.0, 19.0],
            seed,
            noise: 0.1,
            ..PeaksSpec::default()
        }),
        2 => peaks(PeaksSpec { centers: vec![12.0], seed, noise: 0.2, ..PeaksSpec::default() }),
        _ => random_walk(49, 0.0, 0.3, seed),
    }
}

/// Runs `queries` as one coalesced wave through the unified request API,
/// so the oracle suites cover the path every entry point now routes to.
fn run_wave(
    engine: &QueryEngine,
    archive: &ArchiveStore,
    queries: &[BatchQuery],
) -> Vec<QueryOutcome> {
    let requests: Vec<QueryRequest> =
        queries.iter().map(|q| QueryRequest::expr(QueryExpr::Leaf(q.to_pred()))).collect();
    engine
        .run_requests(&archive.snapshot(), &requests)
        .unwrap()
        .into_iter()
        .map(|r| r.unwrap().outcome)
        .collect()
}

fn feature_queries() -> Vec<QuerySpec> {
    vec![
        QuerySpec::Shape { pattern: "0* 1+ (-1)+ 0* 1+ (-1)+ 0*".into() },
        QuerySpec::PeakCount { count: 2, tolerance: 1 },
        QuerySpec::PeakInterval { interval: 7, epsilon: 2 },
        QuerySpec::MinPeakSteepness { steepness: 1.0, slack: 0.4 },
        QuerySpec::HasSteepPeak { steepness: 1.5, slack: 0.2 },
    ]
}

/// The acceptance gate: a ≥200-sequence archive, every query type, four
/// workers — identical hits in identical order on every path.
#[test]
fn four_workers_match_sequential_paths_on_200_sequences() {
    let corpus: Vec<Sequence> = (0..200).map(|i| mixed_sequence(i, 1000 + i)).collect();
    let (store, archive) = ingest(&corpus);

    let engine =
        QueryEngine::new(EngineConfig { workers: 4, shards: 16, ..EngineConfig::default() })
            .unwrap();
    let mut batch: Vec<BatchQuery> =
        feature_queries().into_iter().map(BatchQuery::Feature).collect();
    batch.push(BatchQuery::ValueBand {
        query: goalpost(GoalpostSpec::default()),
        delta: 1.0,
        slack: 1.0,
    });

    let parallel = run_wave(&engine, &archive, &batch);
    let sequential = engine.run_sequential(&archive, &batch).unwrap();
    assert_eq!(parallel, sequential, "parallel vs sequential oracle");

    // Feature queries also agree with the store-level (index-assisted)
    // evaluator, hit for hit and byte for byte.
    for (spec, outcome) in feature_queries().iter().zip(&parallel) {
        let store_outcome = evaluate(&store, spec).unwrap();
        assert_eq!(outcome, &store_outcome, "engine vs store for {spec:?}");
    }

    // Sanity: the corpus is a quarter goalposts; the shape query finds a
    // healthy share of them.
    assert!(parallel[0].exact.len() >= 20, "only {} goalposts", parallel[0].exact.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Randomized corpora and query parameters: the engine agrees with the
    /// store evaluator for every feature query type.
    #[test]
    fn engine_matches_store_evaluator(
        seeds in prop::collection::vec((0u64..4, 0u64..10_000), 10..40),
        count in 0usize..4,
        tolerance in 0usize..3,
        interval in 3i64..15,
        epsilon in 0i64..3,
        workers in 1usize..6,
        shards in 1usize..24,
    ) {
        let corpus: Vec<Sequence> =
            seeds.iter().map(|&(kind, seed)| mixed_sequence(kind, seed)).collect();
        let (store, archive) = ingest(&corpus);
        let engine = QueryEngine::new(EngineConfig {
            workers,
            shards,
            ..EngineConfig::default()
        })
        .unwrap();
        let specs = [
            QuerySpec::Shape { pattern: "0* 1+ (-1)+ 0* 1+ (-1)+ 0*".into() },
            QuerySpec::PeakCount { count, tolerance },
            QuerySpec::PeakInterval { interval, epsilon },
            QuerySpec::MinPeakSteepness { steepness: 1.0, slack: 0.3 },
            QuerySpec::HasSteepPeak { steepness: 1.2, slack: 0.3 },
        ];
        let batch: Vec<BatchQuery> = specs.iter().cloned().map(BatchQuery::Feature).collect();
        let outcomes = run_wave(&engine, &archive, &batch);
        for (spec, outcome) in specs.iter().zip(&outcomes) {
            prop_assert_eq!(outcome, &evaluate(&store, spec).unwrap(), "{:?}", spec);
        }
    }

    /// Value-band batches: parallel result identical to the sequential
    /// oracle for any worker/shard split and band parameters.
    #[test]
    fn band_queries_parallel_equals_sequential(
        seeds in prop::collection::vec((0u64..4, 0u64..10_000), 5..30),
        delta in 0.0f64..3.0,
        slack in 0.0f64..2.0,
        workers in 1usize..6,
        shards in 1usize..24,
    ) {
        let corpus: Vec<Sequence> =
            seeds.iter().map(|&(kind, seed)| mixed_sequence(kind, seed)).collect();
        let (_, archive) = ingest(&corpus);
        let engine = QueryEngine::new(EngineConfig {
            workers,
            shards,
            ..EngineConfig::default()
        })
        .unwrap();
        let batch = vec![BatchQuery::ValueBand {
            query: goalpost(GoalpostSpec::default()),
            delta,
            slack,
        }];
        prop_assert_eq!(
            run_wave(&engine, &archive, &batch),
            engine.run_sequential(&archive, &batch).unwrap()
        );
    }
}
