//! Snapshot isolation under real reader/writer races.
//!
//! A writer thread mutates a store through its own cloned handle while
//! reader threads — with **no external locking around reads** — pin
//! snapshots and run query batches through every engine. Each batch must
//! match the naive set-algebra oracle computed from *its own snapshot's
//! contents*: whatever generation a reader pinned, that is exactly what it
//! sees, start to finish, no matter how far the writer has moved on.
//!
//! `SAQ_PROP_SNAPSHOT_CASES` raises the proptest case count (the CI
//! stress job sets it); `SAQ_PROP_SNAPSHOT_READERS` the reader thread
//! count per case.

mod common;

use common::{mixed_sequence, naive_eval, to_outcome};
use proptest::prelude::*;
use saq::archive::{ArchiveScanEngine, ArchiveSnapshot, ArchiveStore, Medium};
use saq::core::algebra::{Planner, QueryEngine as _, QueryExpr};
use saq::core::query::QueryOutcome;
use saq::core::store::{SequenceStore, SharedStore, StoreConfig, StoreSnapshot, StoredEntry};
use saq::core::QueryRequest;
use saq::engine::{BatchQuery, EngineConfig, QueryEngine as ShardedEngine};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// The oracle at one pinned archive generation: every sequence the
/// snapshot holds is represented from scratch, leaves are naive scans, and
/// composition is textbook set algebra.
fn archive_oracle(snap: &ArchiveSnapshot, expr: &QueryExpr) -> QueryOutcome {
    let config = StoreConfig::default();
    let entries: BTreeMap<u64, StoredEntry> = snap
        .ids()
        .iter()
        .map(|&id| (id, StoredEntry::compute(snap.get(id).unwrap(), &config).unwrap()))
        .collect();
    let refs: BTreeMap<u64, &StoredEntry> = entries.iter().map(|(&id, e)| (id, e)).collect();
    to_outcome(naive_eval(&Planner::normalize(expr), snap.ids(), &refs))
}

/// As [`archive_oracle`], over a pinned representation-store generation.
fn store_oracle(snap: &StoreSnapshot, expr: &QueryExpr) -> QueryOutcome {
    let ids = snap.ids();
    let refs: BTreeMap<u64, &StoredEntry> =
        ids.iter().map(|&id| (id, snap.get(id).unwrap())).collect();
    to_outcome(naive_eval(&Planner::normalize(expr), &ids, &refs))
}

/// Runs `queries` as one coalesced wave over a pinned snapshot through
/// the unified request API.
fn run_wave(
    engine: &ShardedEngine,
    snap: &ArchiveSnapshot,
    queries: &[BatchQuery],
) -> Vec<QueryOutcome> {
    let requests: Vec<QueryRequest> =
        queries.iter().map(|q| QueryRequest::expr(QueryExpr::Leaf(q.to_pred()))).collect();
    engine.run_requests(snap, &requests).unwrap().into_iter().map(|r| r.unwrap().outcome).collect()
}

/// One writer mutation: `(slot, kind, seed)` — slot picks the id, kind
/// picks put/remove/rewrite, seed varies the content.
type WriteOp = (u64, u64, u64);

fn apply_archive_op(archive: &mut ArchiveStore, (slot, kind, seed): WriteOp) {
    let id = slot % 24;
    if kind % 4 == 3 && archive.get(id).is_some() {
        archive.remove(id);
    } else {
        archive.put(id, mixed_sequence(kind + seed, seed));
    }
}

fn small_exprs() -> Vec<QueryExpr> {
    vec![
        QueryExpr::peak_count(2, 1).or(QueryExpr::peak_interval(10, 3)),
        QueryExpr::shape("0* 1+ (-1)+ 0*").and(QueryExpr::peak_count(2, 1).negate()),
        QueryExpr::min_steepness(0.6, 0.2).and(QueryExpr::id_range(0, 15)).top_k(4),
    ]
}

fn batch() -> Vec<BatchQuery> {
    use saq::core::query::QuerySpec;
    vec![
        BatchQuery::Feature(QuerySpec::PeakCount { count: 2, tolerance: 1 }),
        BatchQuery::Feature(QuerySpec::PeakInterval { interval: 10, epsilon: 3 }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        env_usize("SAQ_PROP_SNAPSHOT_CASES", 4) as u32
    ))]

    /// The tentpole property: readers pinning snapshots of a live archive
    /// under concurrent writer churn always match the oracle at their
    /// pinned generation — through the pinned sequential scan engine, the
    /// sharded engine's algebra binding, and its batch API, all sharing
    /// one engine (and thus one stamped LRU) across threads.
    #[test]
    fn concurrent_archive_readers_match_their_pinned_generation(
        corpus in proptest::collection::vec((0u64..4, 0u64..1000), 6..14),
        script in proptest::collection::vec((0u64..24, 0u64..8, 0u64..1000), 8..32),
    ) {
        let mut archive = ArchiveStore::new(Medium::memory());
        for (i, &(kind, seed)) in corpus.iter().enumerate() {
            archive.put(i as u64, mixed_sequence(kind, seed));
        }
        let engine = Arc::new(ShardedEngine::new(EngineConfig {
            workers: 3,
            shards: 5,
            ..EngineConfig::default()
        }).unwrap());
        let exprs = small_exprs();
        let queries = batch();
        let stop = AtomicBool::new(false);
        let readers = env_usize("SAQ_PROP_SNAPSHOT_READERS", 3);

        std::thread::scope(|scope| {
            // The writer owns a cloned handle onto the same archive and
            // replays the mutation script until every reader is done.
            let mut writer_handle = archive.clone();
            let script = &script;
            let stop = &stop;
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    for &op in script {
                        apply_archive_op(&mut writer_handle, op);
                    }
                    std::thread::yield_now();
                }
            });

            let mut handles = Vec::new();
            for _ in 0..readers {
                let reader_handle = archive.clone();
                let engine = Arc::clone(&engine);
                let exprs = &exprs;
                let queries = &queries;
                handles.push(scope.spawn(move || {
                    for _ in 0..3 {
                        let snap = reader_handle.snapshot();
                        let generation = snap.generation();
                        for expr in exprs {
                            let expected = archive_oracle(&snap, expr);
                            let scan = ArchiveScanEngine::pinned(snap.clone(), StoreConfig::default());
                            assert_eq!(scan.execute(expr).unwrap(), expected, "pinned scan @{generation}");
                            let bound = engine.bind_snapshot(snap.clone());
                            assert_eq!(bound.execute(expr).unwrap(), expected, "sharded @{generation}");
                            // A second pass through the shared LRU (which
                            // other threads may have re-stamped to newer
                            // generations in between) must not drift.
                            assert_eq!(bound.execute(expr).unwrap(), expected, "rerun @{generation}");
                        }
                        let outs = run_wave(&engine, &snap, queries);
                        for (q, out) in queries.iter().zip(&outs) {
                            let expected = archive_oracle(&snap, &QueryExpr::Leaf(q.to_pred()));
                            assert_eq!(out, &expected, "batch @{generation}");
                        }
                        assert_eq!(snap.generation(), generation, "a snapshot never moves");
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            stop.store(true, Ordering::Relaxed);
        });
    }

    /// The same property on the representation-store side: readers of a
    /// [`SharedStore`] pin [`StoreSnapshot`]s (which are engines
    /// themselves) while a writer inserts, rewrites, and removes.
    #[test]
    fn concurrent_store_readers_match_their_pinned_generation(
        corpus in proptest::collection::vec((0u64..4, 0u64..1000), 6..12),
        script in proptest::collection::vec((0u64..24, 0u64..8, 0u64..1000), 8..24),
    ) {
        let mut store = SequenceStore::new(StoreConfig::default()).unwrap();
        for &(kind, seed) in &corpus {
            store.insert(&mixed_sequence(kind, seed)).unwrap();
        }
        let shared = SharedStore::new(store);
        let exprs = small_exprs();
        let stop = AtomicBool::new(false);

        std::thread::scope(|scope| {
            let shared_ref = &shared;
            let stop = &stop;
            let script = &script;
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    for &(slot, kind, seed) in script {
                        let ids = shared_ref.read(|s| s.ids());
                        match (kind % 3, ids.get(slot as usize % ids.len().max(1))) {
                            (0, _) | (_, None) => {
                                shared_ref.insert(&mixed_sequence(kind, seed)).unwrap();
                            }
                            (1, Some(&id)) => {
                                shared_ref.reinsert(id, &mixed_sequence(kind + 1, seed)).unwrap();
                            }
                            (_, Some(&id)) => {
                                let _ = shared_ref.remove(id);
                            }
                        }
                    }
                    std::thread::yield_now();
                }
            });

            let mut handles = Vec::new();
            for _ in 0..env_usize("SAQ_PROP_SNAPSHOT_READERS", 3) {
                let exprs = &exprs;
                handles.push(scope.spawn(move || {
                    for _ in 0..3 {
                        let snap = shared_ref.snapshot();
                        let stats = snap.index_stats();
                        for expr in exprs {
                            let expected = store_oracle(&snap, expr);
                            assert_eq!(snap.execute(expr).unwrap(), expected);
                        }
                        assert_eq!(snap.index_stats(), stats, "pinned stats never move");
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            stop.store(true, Ordering::Relaxed);
        });
    }
}

/// A reader's snapshot is byte-stable across writer generations: results
/// and index statistics re-computed from the pinned snapshot are identical
/// before and after the writer advances N generations, and a re-pin then
/// observes the new state.
#[test]
fn pinned_results_and_stats_are_byte_identical_across_writer_churn() {
    let mut store = SequenceStore::new(StoreConfig::default()).unwrap();
    for i in 0..10u64 {
        store.insert(&mixed_sequence(i, i)).unwrap();
    }
    let shared = SharedStore::new(store);
    let snap = shared.snapshot();
    let exprs = small_exprs();
    let before: Vec<QueryOutcome> = exprs.iter().map(|e| snap.execute(e).unwrap()).collect();
    let stats_before = snap.index_stats();

    for g in 0..20u64 {
        match g % 3 {
            0 => drop(shared.insert(&mixed_sequence(g, 100 + g)).unwrap()),
            1 => {
                let id = shared.read(|s| s.ids()[g as usize % s.len()]);
                shared.reinsert(id, &mixed_sequence(g + 1, 200 + g)).unwrap();
            }
            _ => drop(shared.remove(shared.read(|s| s.ids()[0])).unwrap()),
        }
    }
    assert!(shared.read(|s| s.generation()) > snap.generation());

    let after: Vec<QueryOutcome> = exprs.iter().map(|e| snap.execute(e).unwrap()).collect();
    assert_eq!(before, after, "pinned results must not move");
    assert_eq!(snap.index_stats(), stats_before, "pinned stats must not move");
    assert_ne!(
        shared.snapshot().index_stats(),
        stats_before,
        "a fresh pin sees the writer's churn"
    );
}

/// Dropping the last reference to a superseded snapshot frees the index
/// structures it pinned — the copy-on-write layer holds no leaks.
#[test]
fn dropping_the_last_store_snapshot_frees_superseded_indexes() {
    let mut store = SequenceStore::new(StoreConfig::default()).unwrap();
    for i in 0..6u64 {
        store.insert(&mixed_sequence(i, i)).unwrap();
    }
    let snap = store.snapshot();
    let probe = snap.index_probe();

    // The writer replaces every index member; the old ones now live only
    // through the snapshot.
    for (i, id) in store.ids().into_iter().enumerate() {
        store.reinsert(id, &mixed_sequence(i as u64 + 1, 50 + i as u64)).unwrap();
    }
    assert!(probe.is_live(), "snapshot still pins the superseded indexes");
    drop(snap);
    assert!(!probe.is_live(), "last reference gone, superseded indexes freed");
}

/// The acceptance-criteria cache check, driven through the snapshot layer:
/// after `k` single-id puts, re-running a batch pinned to the *new*
/// generation fetches exactly the `k` dirty sequences.
#[test]
fn rerun_after_k_puts_fetches_exactly_k_sequences() {
    let mut archive = ArchiveStore::new(Medium::memory());
    for i in 0..16u64 {
        archive.put(i, mixed_sequence(i, i));
    }
    let engine = ShardedEngine::new(EngineConfig::default()).unwrap();
    let queries = batch();
    run_wave(&engine, &archive.snapshot(), &queries);
    assert_eq!(archive.fetch_count(), 16, "cold run fetches the whole archive");

    for k in [1u64, 3, 5] {
        let mut writer = archive.clone();
        for i in 0..k {
            writer.put(i, mixed_sequence(i + k, 300 + k * 31 + i));
        }
        let before = archive.fetch_count();
        let snap = archive.snapshot();
        let outs = run_wave(&engine, &snap, &queries);
        assert_eq!(archive.fetch_count() - before, k, "exactly the {k} dirty ids re-fetched");
        for (q, out) in queries.iter().zip(&outs) {
            assert_eq!(out, &archive_oracle(&snap, &QueryExpr::Leaf(q.to_pred())));
        }
    }
}
