//! Shared ground truth for the algebra-level property suites
//! (`prop_algebra.rs`, `prop_saql.rs`): a mixed corpus generator, a naive
//! leaf-scan + set-algebra oracle written without `MatchSet` (so the
//! engines' shared combinators are independently checked), `QueryExpr`
//! strategies, and the harness asserting every planner-backed engine
//! matches the oracle id-identically.

// Each integration-test crate pulls in the subset it needs.
#![allow(dead_code)]

use proptest::prelude::*;
use saq::archive::{ArchiveScanEngine, ArchiveStore, Medium};
use saq::core::algebra::{
    IndexCaps, Planner, Pred, PreparedPred, QueryEngine, QueryExpr, StoreEngine,
};
use saq::core::query::{ApproximateMatch, QueryOutcome};
use saq::core::store::{SequenceStore, StoreConfig, StoredEntry};
use saq::engine::{EngineConfig, QueryEngine as ShardedEngine};
use saq::sequence::generators::{goalpost, peaks, random_walk, GoalpostSpec, PeaksSpec};
use saq::sequence::Sequence;
use std::collections::BTreeMap;

pub const GOALPOST: &str = "0* 1+ (-1)+ 0* 1+ (-1)+ 0*";

// ---------------------------------------------------------------------------
// Corpus
// ---------------------------------------------------------------------------

pub fn mixed_sequence(kind: u64, seed: u64) -> Sequence {
    match kind % 4 {
        0 => goalpost(GoalpostSpec { seed, noise: 0.15, ..GoalpostSpec::default() }),
        1 => peaks(PeaksSpec {
            centers: vec![4.0, 11.0, 19.0],
            seed,
            noise: 0.1,
            ..PeaksSpec::default()
        }),
        2 => peaks(PeaksSpec { centers: vec![12.0], seed, noise: 0.2, ..PeaksSpec::default() }),
        _ => random_walk(49, 0.0, 0.3, seed),
    }
}

/// Ingests the corpus into a representation store and a raw archive with
/// identical id → sequence mappings.
pub fn ingest(corpus: &[Sequence]) -> (SequenceStore, ArchiveStore) {
    let mut store = SequenceStore::new(StoreConfig::default()).unwrap();
    let mut archive = ArchiveStore::new(Medium::memory());
    for seq in corpus {
        let id = store.insert(seq).unwrap();
        archive.put(id, seq.clone());
    }
    (store, archive)
}

// ---------------------------------------------------------------------------
// The naive oracle: leaf scans + textbook set algebra.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tier {
    pub dev: f64,
    pub approx: bool,
}

pub type Set = BTreeMap<u64, Tier>;

fn naive_leaf(pred: &Pred, universe: &[u64], entries: &BTreeMap<u64, &StoredEntry>) -> Set {
    let prepared = PreparedPred::new(pred).expect("generated predicates are valid");
    let mut out = Set::new();
    for &id in universe {
        let verdict = prepared.matches(id, Some(entries[&id]));
        match verdict {
            Some(saq::core::SequenceMatch::Exact) => {
                out.insert(id, Tier { dev: 0.0, approx: false });
            }
            Some(saq::core::SequenceMatch::Approximate(dev)) => {
                out.insert(id, Tier { dev, approx: true });
            }
            None => {}
        }
    }
    out
}

pub fn naive_eval(
    expr: &QueryExpr,
    universe: &[u64],
    entries: &BTreeMap<u64, &StoredEntry>,
) -> Set {
    match expr {
        QueryExpr::Leaf(pred) => naive_leaf(pred, universe, entries),
        QueryExpr::And(children) => {
            let sets: Vec<Set> =
                children.iter().map(|c| naive_eval(c, universe, entries)).collect();
            let mut out = Set::new();
            'ids: for &id in universe {
                let mut dev = 0.0;
                let mut approx = false;
                for set in &sets {
                    match set.get(&id) {
                        Some(t) => {
                            dev += t.dev;
                            approx |= t.approx;
                        }
                        None => continue 'ids,
                    }
                }
                out.insert(id, Tier { dev, approx });
            }
            out
        }
        QueryExpr::Or(children) => {
            let sets: Vec<Set> =
                children.iter().map(|c| naive_eval(c, universe, entries)).collect();
            let mut out = Set::new();
            for &id in universe {
                let tiers: Vec<Tier> = sets.iter().filter_map(|s| s.get(&id).copied()).collect();
                if tiers.is_empty() {
                    continue;
                }
                let tier = if tiers.iter().any(|t| !t.approx) {
                    Tier { dev: 0.0, approx: false }
                } else {
                    Tier {
                        dev: tiers.iter().map(|t| t.dev).fold(f64::INFINITY, f64::min),
                        approx: true,
                    }
                };
                out.insert(id, tier);
            }
            out
        }
        QueryExpr::Not(child) => {
            let matched = naive_eval(child, universe, entries);
            universe
                .iter()
                .filter(|id| !matched.contains_key(id))
                .map(|&id| (id, Tier { dev: 0.0, approx: false }))
                .collect()
        }
        QueryExpr::Limit(child, n) => {
            let inner = naive_eval(child, universe, entries);
            canonical_order(&inner).into_iter().take(*n).map(|id| (id, inner[&id])).collect()
        }
        QueryExpr::TopK(child, k) => {
            let inner = naive_eval(child, universe, entries);
            let mut ranked: Vec<u64> = inner.keys().copied().collect();
            ranked.sort_by(|a, b| {
                let (ta, tb) = (inner[a], inner[b]);
                ta.dev.partial_cmp(&tb.dev).unwrap().then(ta.approx.cmp(&tb.approx)).then(a.cmp(b))
            });
            ranked.into_iter().take(*k).map(|id| (id, inner[&id])).collect()
        }
    }
}

/// Canonical result order: exact ids ascending, then approximate matches
/// by `(deviation, id)`.
pub fn canonical_order(set: &Set) -> Vec<u64> {
    let mut exact: Vec<u64> = set.iter().filter(|(_, t)| !t.approx).map(|(id, _)| *id).collect();
    let mut approx: Vec<u64> = set.iter().filter(|(_, t)| t.approx).map(|(id, _)| *id).collect();
    exact.sort_unstable();
    approx.sort_by(|a, b| set[a].dev.partial_cmp(&set[b].dev).unwrap().then(a.cmp(b)));
    exact.into_iter().chain(approx).collect()
}

pub fn to_outcome(set: Set) -> QueryOutcome {
    let mut exact = Vec::new();
    let mut approximate = Vec::new();
    for (id, tier) in &set {
        if tier.approx {
            approximate.push(ApproximateMatch { id: *id, deviation: tier.dev });
        } else {
            exact.push(*id);
        }
    }
    approximate
        .sort_by(|a, b| a.deviation.partial_cmp(&b.deviation).unwrap().then(a.id.cmp(&b.id)));
    QueryOutcome { exact, approximate }
}

/// The oracle outcome for an expression (leaves scanned over the full
/// universe, composed with set algebra on the normalized tree — the same
/// association order every engine uses).
pub fn oracle(expr: &QueryExpr, store: &SequenceStore) -> QueryOutcome {
    let universe = store.ids();
    let entries: BTreeMap<u64, &StoredEntry> =
        universe.iter().map(|&id| (id, store.get(id).unwrap())).collect();
    to_outcome(naive_eval(&Planner::normalize(expr), &universe, &entries))
}

// ---------------------------------------------------------------------------
// Expression strategy
// ---------------------------------------------------------------------------

pub fn leaf_strategy() -> BoxedStrategy<QueryExpr> {
    prop_oneof![
        Just(QueryExpr::shape(GOALPOST)),
        Just(QueryExpr::shape("0* 1+ (-1)+ 0*")),
        (0usize..4, 0usize..3).prop_map(|(c, t)| QueryExpr::peak_count(c, t)),
        (3i64..13, 0i64..4).prop_map(|(i, e)| QueryExpr::peak_interval(i, e)),
        (0u32..30, 0u32..6).prop_map(|(s, sl)| {
            QueryExpr::min_steepness(0.4 + s as f64 * 0.1, sl as f64 * 0.1)
        }),
        (0u32..30, 0u32..6).prop_map(|(s, sl)| {
            QueryExpr::has_steep_peak(0.4 + s as f64 * 0.1, sl as f64 * 0.1)
        }),
        (0u32..12, 0u32..8).prop_map(|(d, sl)| {
            QueryExpr::value_band(
                goalpost(GoalpostSpec::default()),
                d as f64 * 0.25,
                sl as f64 * 0.25,
            )
        }),
        (0u64..30, 0u64..30).prop_map(|(a, b)| QueryExpr::id_range(a.min(b), a.max(b))),
    ]
    .boxed()
}

pub fn expr_strategy() -> BoxedStrategy<QueryExpr> {
    leaf_strategy().prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(a, b, c)| a.and(b).and(c)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.clone().prop_map(QueryExpr::negate),
            (inner.clone(), 0usize..9).prop_map(|(a, n)| a.limit(n)),
            (inner, 1usize..9).prop_map(|(a, k)| a.top_k(k)),
        ]
    })
}

// ---------------------------------------------------------------------------
// The comparison harness
// ---------------------------------------------------------------------------

pub fn assert_all_engines_match(
    expr: &QueryExpr,
    store: &SequenceStore,
    archive: &ArchiveStore,
    worker_grid: &[(usize, usize)],
) -> Result<(), TestCaseError> {
    let expected = oracle(expr, store);

    let indexed = StoreEngine::new(store).execute(expr).unwrap();
    prop_assert_eq!(&indexed, &expected, "store engine (index pushdown) vs oracle: {:?}", expr);

    let scan_only = StoreEngine::with_caps(store, IndexCaps::none()).execute(expr).unwrap();
    prop_assert_eq!(&scan_only, &expected, "store engine (scan only) vs oracle: {:?}", expr);

    let archive_seq =
        ArchiveScanEngine::new(archive, StoreConfig::default()).execute(expr).unwrap();
    prop_assert_eq!(&archive_seq, &expected, "sequential archive engine vs oracle: {:?}", expr);

    for &(workers, shards) in worker_grid {
        let sharded =
            ShardedEngine::new(EngineConfig { workers, shards, ..EngineConfig::default() })
                .unwrap();
        let out = sharded.bind(archive).execute(expr).unwrap();
        prop_assert_eq!(
            &out,
            &expected,
            "sharded engine ({} workers, {} shards) vs oracle: {:?}",
            workers,
            shards,
            expr
        );
    }
    Ok(())
}
