//! SAQL round-trip ground truth: for random `QueryExpr` trees,
//! `parse(print(expr))` must be the *identical* tree — same structure,
//! bit-identical numbers — which is checked three ways:
//!
//! 1. structural equality of the re-parsed tree,
//! 2. verbatim-equal physical plans (`explain` output, statistics-backed
//!    planner included), and
//! 3. the re-parsed tree run through **every** engine (index-pushdown
//!    store, scan-only store, sequential archive, sharded parallel)
//!    against the naive set-algebra oracle of `tests/common/mod.rs` — the
//!    same oracle the algebra itself is verified against.

mod common;

use common::{assert_all_engines_match, expr_strategy, ingest, mixed_sequence, oracle, GOALPOST};
use proptest::prelude::*;
use saq::core::algebra::{IndexCaps, PlanStats, Planner, QueryEngine, QueryExpr, StoreEngine};
use saq::core::lang::saql;
use saq::core::QueryRequest;
use saq::sequence::Sequence;

/// Deterministic gate: compound expressions covering every node type
/// round-trip and the re-parsed tree matches the oracle on all engines.
#[test]
fn compound_expressions_round_trip_and_match_the_oracle() {
    let corpus: Vec<Sequence> = (0..40).map(|i| mixed_sequence(i, 7000 + i)).collect();
    let (store, archive) = ingest(&corpus);
    let exprs = [
        QueryExpr::shape(GOALPOST).and(QueryExpr::peak_interval(8, 2)).top_k(5),
        QueryExpr::peak_count(2, 1)
            .or(QueryExpr::peak_count(3, 0))
            .and(QueryExpr::id_range(5, 25).negate()),
        QueryExpr::peak_count(1, 0).limit(3).or(QueryExpr::has_steep_peak(1.0, 0.3).limit(2)),
        QueryExpr::min_steepness(0.6, 0.25).negate().negate(),
        QueryExpr::peak_count(2, 2).and(QueryExpr::min_steepness(0.5, 0.0)).limit(6).top_k(3),
    ];
    for expr in &exprs {
        let text = expr.to_saql().unwrap();
        let back = saql::parse(&text).unwrap();
        assert_eq!(&back, expr, "`{text}`");
        assert_all_engines_match(&back, &store, &archive, &[(3, 8)]).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// parse ∘ print = id on random trees, with identical plans under
    /// both the statistics-free and statistics-backed planners.
    #[test]
    fn print_then_parse_is_the_identity(
        seeds in prop::collection::vec((0u64..4, 0u64..10_000), 6..16),
        expr in expr_strategy(),
    ) {
        let text = expr.to_saql().unwrap();
        let back = saql::parse(&text).unwrap();
        prop_assert_eq!(&back, &expr, "round-trip through `{}`", text);

        let static_planner = Planner::new(IndexCaps::all());
        prop_assert_eq!(
            static_planner.plan(&expr).unwrap().explain(),
            static_planner.plan(&back).unwrap().explain(),
            "static plans diverge for `{}`", text
        );

        let corpus: Vec<Sequence> =
            seeds.iter().map(|&(kind, seed)| mixed_sequence(kind, seed)).collect();
        let (store, _) = ingest(&corpus);
        let stats_planner = Planner::with_stats(IndexCaps::all(), PlanStats::from_store(&store));
        prop_assert_eq!(
            stats_planner.plan(&expr).unwrap().explain(),
            stats_planner.plan(&back).unwrap().explain(),
            "statistics-backed plans diverge for `{}`", text
        );
    }

    /// The re-parsed tree, run through every engine, matches the PR 3
    /// oracle — and the textual entry point (`execute_saql`) agrees with
    /// executing the constructed tree.
    #[test]
    fn reparsed_trees_match_every_engine_and_the_oracle(
        seeds in prop::collection::vec((0u64..4, 0u64..10_000), 6..20),
        expr in expr_strategy(),
        workers in 1usize..5,
        shards in 1usize..16,
    ) {
        let text = expr.to_saql().unwrap();
        let back = saql::parse(&text).unwrap();
        let corpus: Vec<Sequence> =
            seeds.iter().map(|&(kind, seed)| mixed_sequence(kind, seed)).collect();
        let (store, archive) = ingest(&corpus);
        assert_all_engines_match(&back, &store, &archive, &[(workers, shards)])?;
        let via_text =
            StoreEngine::new(&store).request(&QueryRequest::saql(&text)).unwrap().outcome;
        prop_assert_eq!(&via_text, &oracle(&expr, &store), "SAQL request vs oracle: `{}`", text);
    }
}
