//! Keeps `docs/SERVER.md` honest: every fenced code block tagged `saqp`
//! must parse through the real SAQP/1 implementation — request payloads
//! through `WireRequest::parse` (with `QUERY` bodies parsing as SAQL),
//! response payloads through `WireResponse::parse` and on into a
//! `QueryResponse` or the error they carry. Run by the CI docs job (and
//! plain `cargo test`).

use saq::core::lang::saql;
use saq::server::protocol::{Verb, WireRequest, WireResponse};

const DOC: &str = include_str!("../docs/SERVER.md");

/// Extracts the contents of every ```saqp fenced block.
fn saqp_blocks(doc: &str) -> Vec<String> {
    let mut blocks = Vec::new();
    let mut current: Option<String> = None;
    for line in doc.lines() {
        let fence = line.trim_start();
        match &mut current {
            None if fence.trim_end() == "```saqp" => current = Some(String::new()),
            None => {}
            Some(block) => {
                if fence.starts_with("```") {
                    blocks.push(current.take().expect("block in progress"));
                } else {
                    block.push_str(line);
                    block.push('\n');
                }
            }
        }
    }
    assert!(current.is_none(), "unterminated ```saqp block in docs/SERVER.md");
    blocks
}

#[test]
fn every_saqp_block_in_the_docs_speaks_the_real_protocol() {
    let blocks = saqp_blocks(DOC);
    assert!(
        blocks.len() >= 6,
        "docs/SERVER.md should keep its worked protocol examples (found {})",
        blocks.len()
    );
    for block in &blocks {
        let status = block.lines().next().unwrap_or_default();
        if status.starts_with("OK") || status.starts_with("ERR") {
            let reply = WireResponse::parse(block)
                .unwrap_or_else(|e| panic!("docs/SERVER.md reply failed to parse:\n{block}\n{e}"));
            if reply.ok {
                reply.to_response().unwrap_or_else(|e| {
                    panic!(
                        "docs/SERVER.md OK reply does not lift to a QueryResponse:\n{block}\n{e}"
                    )
                });
            } else {
                let err = reply.to_error();
                assert!(err.code() > 0, "documented errors carry a stable code:\n{block}");
            }
        } else {
            let request = WireRequest::parse(block).unwrap_or_else(|e| {
                panic!("docs/SERVER.md request failed to parse:\n{block}\n{e}")
            });
            if request.verb == Verb::Query {
                saql::parse(request.body.trim()).unwrap_or_else(|e| {
                    panic!("docs/SERVER.md QUERY body is not valid SAQL:\n{block}\n{e}")
                });
            }
        }
    }
}

#[test]
fn documented_examples_round_trip_through_render() {
    for block in saqp_blocks(DOC) {
        let status = block.lines().next().unwrap_or_default();
        if status.starts_with("OK") || status.starts_with("ERR") {
            let reply = WireResponse::parse(&block).unwrap();
            assert_eq!(WireResponse::parse(&reply.render()).unwrap(), reply);
        } else {
            let request = WireRequest::parse(&block).unwrap();
            assert_eq!(WireRequest::parse(&request.render()).unwrap(), request);
        }
    }
}
