//! Keeps `docs/SAQL.md` honest: every fenced code block tagged `saql` in
//! the grammar document must parse, and must round-trip through the
//! unparser. Run by the CI docs job (and plain `cargo test`).

use saq::core::lang::saql;

const DOC: &str = include_str!("../docs/SAQL.md");

/// Extracts the contents of every ```saql fenced block.
fn saql_blocks(doc: &str) -> Vec<String> {
    let mut blocks = Vec::new();
    let mut current: Option<String> = None;
    for line in doc.lines() {
        let fence = line.trim_start();
        match &mut current {
            None if fence.trim_end() == "```saql" => current = Some(String::new()),
            None => {}
            Some(block) => {
                if fence.starts_with("```") {
                    blocks.push(current.take().expect("block in progress"));
                } else {
                    block.push_str(line);
                    block.push('\n');
                }
            }
        }
    }
    assert!(current.is_none(), "unterminated ```saql block in docs/SAQL.md");
    blocks
}

#[test]
fn every_saql_block_in_the_docs_parses_and_round_trips() {
    let blocks = saql_blocks(DOC);
    assert!(
        blocks.len() >= 7,
        "docs/SAQL.md should keep its worked examples (found {})",
        blocks.len()
    );
    for block in &blocks {
        let expr = saql::parse(block)
            .unwrap_or_else(|e| panic!("docs/SAQL.md block failed to parse:\n{block}\n{e}"));
        let printed = expr.to_saql().expect("documented queries are printable");
        assert_eq!(
            saql::parse(&printed).expect("printed form re-parses"),
            expr,
            "docs/SAQL.md block does not round-trip:\n{block}"
        );
    }
}
