//! End-to-end integration: the §5.2 cardiology workflow — synthesize ECGs,
//! break at ε=10, build the peaks table, index R–R intervals in the
//! inverted file, and answer interval queries.

use saq::ecg::analyze;
use saq::ecg::corpus::{build_corpus, build_rr_index, rr_query};
use saq::ecg::synth::{synthesize, EcgSpec};

#[test]
fn corpus_rr_queries_are_selective_and_complete() {
    let corpus = build_corpus(15, (115.0, 185.0), 99).unwrap();
    let index = build_rr_index(&corpus);

    // Completeness: every ECG is findable through one of its own buckets.
    for (id, _, report) in &corpus.entries {
        let bucket = report.rr_buckets()[0];
        let hits = rr_query(&index, bucket, 0);
        assert!(hits.contains(id), "ECG {id} not findable at its own bucket {bucket}");
    }

    // Selectivity: a tight band only returns ECGs with an interval in band.
    for n in [120i64, 150, 180] {
        for id in rr_query(&index, n, 2) {
            let rrs = corpus.report(id).unwrap().rr_intervals();
            assert!(
                rrs.iter().any(|&d| (d - n as f64).abs() <= 3.0),
                "ECG {id} matched {n}±2 without such an interval: {rrs:?}"
            );
        }
    }
}

#[test]
fn paper_worked_example_136_pm_3() {
    let top = analyze(&synthesize(EcgSpec { rr: 149.0, ..EcgSpec::default() }), 10.0).unwrap();
    let bottom = analyze(&synthesize(EcgSpec { rr: 136.0, ..EcgSpec::default() }), 10.0).unwrap();
    assert_eq!(top.rr_buckets(), vec![149, 149]);
    assert!(bottom.rr_buckets().iter().all(|&b| (b - 136).abs() <= 1));

    let mut idx = saq::index::InvertedIndex::new();
    for (pos, b) in top.rr_buckets().into_iter().enumerate() {
        idx.add(b, 1, pos as u32);
    }
    for (pos, b) in bottom.rr_buckets().into_iter().enumerate() {
        idx.add(b, 2, pos as u32);
    }
    assert_eq!(idx.matching_sequences(136, 3), vec![2]);
}

#[test]
fn analysis_is_robust_to_moderate_noise_and_jitter() {
    for seed in 0..8u64 {
        let spec = EcgSpec { noise: 2.5, rr_jitter: 3.0, seed, ..EcgSpec::default() };
        let report = analyze(&synthesize(spec), 10.0).unwrap();
        assert_eq!(report.r_peaks.len(), 4, "seed {seed}: {:?}", report.rr_intervals());
        for rr in report.rr_intervals() {
            assert!((rr - 136.0).abs() < 12.0, "seed {seed}: rr {rr}");
        }
    }
}

#[test]
fn representation_deviation_respects_epsilon_across_corpus() {
    let corpus = build_corpus(6, (125.0, 165.0), 5).unwrap();
    for (id, raw, report) in &corpus.entries {
        let dev = report.series.max_deviation_from(raw);
        assert!(dev <= 10.0 + 1e-9, "ECG {id}: dev {dev}");
        let c = report.series.compression();
        assert!(c.ratio() > 3.0, "ECG {id}: ratio {}", c.ratio());
    }
}
