//! The query algebra's ground truth: for random `QueryExpr` trees over
//! random corpora, every planner-backed engine — the index-pushdown store
//! engine, the scan-only store engine, the sequential archive engine, and
//! the sharded parallel engine at several worker/shard counts — must
//! return results **id-identical** (same ids, same tiers, same deviations,
//! same order) to a naive oracle that evaluates every leaf by scanning the
//! whole universe and composes the results with plain set algebra.
//!
//! The corpus generator, the oracle, the expression strategies, and the
//! all-engines harness live in `tests/common/mod.rs`, shared with the
//! SAQL round-trip suite (`prop_saql.rs`).

mod common;

use common::{assert_all_engines_match, expr_strategy, ingest, mixed_sequence, GOALPOST};
use proptest::prelude::*;
use saq::core::algebra::{QueryEngine, QueryExpr, StoreEngine};
use saq::engine::{EngineConfig, QueryEngine as ShardedEngine};
use saq::sequence::generators::{goalpost, GoalpostSpec};
use saq::sequence::Sequence;

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

/// The acceptance gate: a fixed 60-sequence corpus, compound expressions
/// exercising every node type, every engine, workers 1/2/4/8.
#[test]
fn compound_expressions_identical_across_all_engines() {
    let corpus: Vec<Sequence> = (0..60).map(|i| mixed_sequence(i, 4000 + i)).collect();
    let (store, archive) = ingest(&corpus);
    let exprs = [
        QueryExpr::shape(GOALPOST).and(QueryExpr::peak_interval(8, 2)),
        QueryExpr::peak_count(2, 1)
            .and(QueryExpr::peak_interval(7, 2))
            .and(QueryExpr::id_range(5, 45)),
        QueryExpr::peak_count(3, 1).or(QueryExpr::shape(GOALPOST)).negate(),
        QueryExpr::peak_count(2, 1)
            .and(QueryExpr::value_band(goalpost(GoalpostSpec::default()), 1.0, 1.0).negate()),
        QueryExpr::peak_count(2, 2).top_k(7),
        QueryExpr::peak_count(2, 2).limit(5).or(QueryExpr::has_steep_peak(1.0, 0.3).limit(3)),
        QueryExpr::id_range(10, 40)
            .and(QueryExpr::peak_count(1, 2).and(QueryExpr::min_steepness(0.6, 0.4))),
    ];
    for expr in &exprs {
        assert_all_engines_match(expr, &store, &archive, &[(1, 1), (2, 8), (4, 16), (8, 64)])
            .unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random trees, random corpora, random worker/shard splits.
    #[test]
    fn random_trees_identical_across_all_engines(
        seeds in prop::collection::vec((0u64..4, 0u64..10_000), 8..28),
        expr in expr_strategy(),
        workers in 1usize..6,
        shards in 1usize..24,
    ) {
        let corpus: Vec<Sequence> =
            seeds.iter().map(|&(kind, seed)| mixed_sequence(kind, seed)).collect();
        let (store, archive) = ingest(&corpus);
        assert_all_engines_match(&expr, &store, &archive, &[(workers, shards)])?;
    }

    /// Adaptive re-planning is ordering-only: for random trees, corpora,
    /// and shard counts, the sharded engine returns identical outcomes
    /// with mid-batch re-planning on and off, and every per-leaf
    /// observed cardinality stays within the universe.
    #[test]
    fn adaptive_replanning_is_ordering_only(
        seeds in prop::collection::vec((0u64..4, 0u64..10_000), 8..28),
        expr in expr_strategy(),
        shards in 2usize..24,
    ) {
        let corpus: Vec<Sequence> =
            seeds.iter().map(|&(kind, seed)| mixed_sequence(kind, seed)).collect();
        let (_store, archive) = ingest(&corpus);
        let requests = vec![saq::core::QueryRequest::expr(expr.clone()).with_stats()];
        let snapshot = archive.snapshot();
        let run = |adaptive: bool| {
            let engine = ShardedEngine::new(EngineConfig {
                workers: 4,
                shards,
                adaptive,
                ..EngineConfig::default()
            })
            .unwrap();
            let mut responses = engine.run_requests(&snapshot, &requests).unwrap();
            responses.pop().unwrap().unwrap()
        };
        let on = run(true);
        let off = run(false);
        prop_assert_eq!(
            &on.outcome, &off.outcome,
            "adaptive vs static outcomes ({} shards): {:?}", shards, expr
        );
        let universe = corpus.len() as u64;
        for resp in [&on, &off] {
            let stats = resp.stats.as_ref().unwrap();
            for observed in stats.observed.iter().flatten() {
                prop_assert!(
                    *observed <= universe,
                    "observed {} exceeds universe {}: {:?}", observed, universe, expr
                );
            }
        }
    }

    /// Single-leaf expressions through the trait's back-compat `evaluate`
    /// agree with the classic store-level evaluator.
    #[allow(deprecated)] // the shims must stay byte-identical until removal
    #[test]
    fn evaluate_shim_agrees_with_store_evaluate(
        seeds in prop::collection::vec((0u64..4, 0u64..10_000), 5..20),
        count in 0usize..4,
        tolerance in 0usize..3,
        interval in 3i64..13,
        epsilon in 0i64..4,
    ) {
        let corpus: Vec<Sequence> =
            seeds.iter().map(|&(kind, seed)| mixed_sequence(kind, seed)).collect();
        let (store, archive) = ingest(&corpus);
        let specs = [
            saq::core::QuerySpec::Shape { pattern: GOALPOST.into() },
            saq::core::QuerySpec::PeakCount { count, tolerance },
            saq::core::QuerySpec::PeakInterval { interval, epsilon },
        ];
        for spec in &specs {
            let classic = saq::core::query::evaluate(&store, spec).unwrap();
            prop_assert_eq!(
                &StoreEngine::new(&store).evaluate(spec).unwrap(),
                &classic,
                "store engine shim: {:?}", spec
            );
            let engine = ShardedEngine::new(EngineConfig::default()).unwrap();
            prop_assert_eq!(
                &engine.bind(&archive).evaluate(spec).unwrap(),
                &classic,
                "sharded shim: {:?}", spec
            );
        }
    }
}
