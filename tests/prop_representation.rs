//! Property-based tests of representation invariants: ε-bounded deviation
//! of the stored representation, in-span evaluation, compression accounting,
//! and normalization/wavelet roundtrips from the preprocessing substrate.

use proptest::prelude::*;
use saq::core::brk::{Breaker, LinearInterpolationBreaker};
use saq::core::repr::FunctionSeries;
use saq::curves::EndpointInterpolator;
use saq::preprocess::{dwt, idwt, z_normalize, Wavelet};
use saq::sequence::Sequence;

fn arb_values(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0f64..100.0, 2..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn interpolation_representation_respects_epsilon(
        values in arb_values(100),
        eps in 0.5f64..8.0,
    ) {
        // With the same fitter used for breaking, the stored representation
        // deviates from the raw data by at most eps (multi-point segments)
        // and exactly hits singletons.
        let seq = Sequence::from_samples(&values).unwrap();
        let ranges = LinearInterpolationBreaker::new(eps).break_ranges(&seq);
        let series = FunctionSeries::build(&seq, &ranges, &EndpointInterpolator).unwrap();
        prop_assert!(series.max_deviation_from(&seq) <= eps + 1e-9);
    }

    #[test]
    fn value_at_is_exact_at_segment_endpoints(values in arb_values(60)) {
        let seq = Sequence::from_samples(&values).unwrap();
        let ranges = LinearInterpolationBreaker::new(1.0).break_ranges(&seq);
        let series = FunctionSeries::build(&seq, &ranges, &EndpointInterpolator).unwrap();
        for seg in series.segments() {
            prop_assert!((series.value_at(seg.start.t).unwrap() - seg.start.v).abs() < 1e-9);
            prop_assert!((series.value_at(seg.end.t).unwrap() - seg.end.v).abs() < 1e-9);
        }
    }

    #[test]
    fn reconstruction_covers_span(values in arb_values(60)) {
        let seq = Sequence::from_samples(&values).unwrap();
        let ranges = LinearInterpolationBreaker::new(1.0).break_ranges(&seq);
        let series = FunctionSeries::build(&seq, &ranges, &EndpointInterpolator).unwrap();
        let rec = series.reconstruct(seq.len().max(2)).unwrap();
        let (lo, hi) = series.span();
        prop_assert_eq!(rec.first().unwrap().t, lo);
        prop_assert_eq!(rec.last().unwrap().t, hi);
    }

    #[test]
    fn compression_parameters_formula(values in arb_values(120)) {
        let seq = Sequence::from_samples(&values).unwrap();
        let ranges = LinearInterpolationBreaker::new(2.0).break_ranges(&seq);
        let series = FunctionSeries::build(&seq, &ranges, &EndpointInterpolator).unwrap();
        let report = series.compression();
        // Lines: 2 params + 2 breakpoints per segment.
        prop_assert_eq!(report.parameters, 4 * report.segments);
        prop_assert_eq!(report.original_points, seq.len());
        prop_assert!(report.ratio() > 0.0);
    }

    #[test]
    fn z_normalization_is_invertible_and_standard(values in arb_values(80)) {
        let seq = Sequence::from_samples(&values).unwrap();
        let (z, params) = z_normalize(&seq);
        let stats = z.stats();
        prop_assert!(stats.mean.abs() < 1e-8);
        // Non-constant inputs end up with unit variance.
        if seq.stats().std_dev > 1e-9 {
            prop_assert!((stats.variance - 1.0).abs() < 1e-6);
        }
        for (orig, norm) in seq.points().iter().zip(z.points()) {
            prop_assert!((params.denormalize(norm.v) - orig.v).abs() < 1e-6);
        }
    }

    #[test]
    fn wavelet_roundtrip_identity(
        values in prop::collection::vec(-100.0f64..100.0, 1..6usize)
            .prop_map(|seed| {
                // Build a power-of-two length from the seed.
                let n = 1usize << (seed.len() + 2);
                (0..n).map(|i| seed[i % seed.len()] * ((i as f64 * 0.1).sin() + 1.0)).collect::<Vec<f64>>()
            })
    ) {
        for w in [Wavelet::Haar, Wavelet::Daubechies4] {
            let back = idwt(&dwt(&values, w), w);
            for (a, b) in values.iter().zip(&back) {
                prop_assert!((a - b).abs() < 1e-6, "{w:?}");
            }
        }
    }
}
