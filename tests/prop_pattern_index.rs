//! Property-based tests of the pattern engine and index structures:
//! NFA/DFA agreement on random patterns and inputs, B+tree equivalence to a
//! model `BTreeMap`, and inverted-file range soundness.

use proptest::prelude::*;
use saq::index::{BPlusTree, InvertedIndex};
use saq::pattern::{Ast, Regex};
use std::collections::BTreeMap;

fn arb_ast(alphabet_size: u8) -> impl Strategy<Value = Ast> {
    let leaf = prop_oneof![Just(Ast::Epsilon), (0..alphabet_size).prop_map(Ast::Symbol),];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Ast::Concat(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Ast::Alt(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| Ast::Star(Box::new(a))),
            inner.clone().prop_map(|a| Ast::Plus(Box::new(a))),
            inner.prop_map(|a| Ast::Optional(Box::new(a))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn nfa_and_dfa_agree(
        ast in arb_ast(3),
        inputs in prop::collection::vec(prop::collection::vec(0u8..3, 0..12), 1..8),
    ) {
        let regex = Regex::from_ast(ast, 3);
        let nfa = regex.to_nfa();
        let dfa = regex.compile();
        for input in &inputs {
            prop_assert_eq!(nfa.is_match(input), dfa.is_match(input), "input {:?}", input);
        }
    }

    #[test]
    fn nullable_ast_accepts_empty(ast in arb_ast(3)) {
        let nullable = ast.nullable();
        let regex = Regex::from_ast(ast, 3);
        prop_assert_eq!(regex.compile().is_match(&[]), nullable);
    }

    #[test]
    fn match_starts_are_consistent_with_longest_match(
        ast in arb_ast(3),
        input in prop::collection::vec(0u8..3, 0..20),
    ) {
        let dfa = Regex::from_ast(ast, 3).compile();
        for start in dfa.match_starts(&input) {
            let m = dfa.longest_match_at(&input, start);
            prop_assert!(m.is_some_and(|m| !m.is_empty()));
        }
    }

    #[test]
    fn bplustree_matches_btreemap_model(
        ops in prop::collection::vec((0u64..200, -1i64..1000), 1..300),
        order in 3usize..12,
    ) {
        // v == -1 encodes a removal of key k; anything else is an insert.
        let mut tree = BPlusTree::with_order(order);
        let mut model = BTreeMap::new();
        for (k, v) in &ops {
            if *v == -1 {
                prop_assert_eq!(tree.remove(k), model.remove(k));
            } else {
                prop_assert_eq!(tree.insert(*k, *v), model.insert(*k, *v));
            }
        }
        prop_assert_eq!(tree.len(), model.len());
        prop_assert!(tree.check_invariants());
        for k in 0..200u64 {
            prop_assert_eq!(tree.get(&k), model.get(&k));
        }
        // Range agrees with the model.
        let (lo, hi) = (30u64, 120u64);
        let got: Vec<(u64, i64)> = tree.range(&lo, &hi).into_iter().map(|(k, v)| (*k, *v)).collect();
        let want: Vec<(u64, i64)> = model.range(lo..=hi).map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn inverted_index_range_is_sound_and_complete(
        postings in prop::collection::vec((0i64..50, 0u64..20, 0u32..10), 0..200),
        key in 0i64..50,
        tol in 0i64..10,
    ) {
        let mut idx = InvertedIndex::new();
        for (k, seq, pos) in &postings {
            idx.add(*k, *seq, *pos);
        }
        let hits = idx.lookup_range(key, tol);
        // Soundness: every hit really occurs under a key in range.
        for h in &hits {
            let present = postings
                .iter()
                .any(|(k, s, p)| (k - key).abs() <= tol && *s == h.sequence && *p == h.position);
            prop_assert!(present, "spurious hit {h:?}");
        }
        // Completeness: every in-range posting is reported.
        for (k, s, p) in &postings {
            if (k - key).abs() <= tol {
                prop_assert!(
                    hits.iter().any(|h| h.sequence == *s && h.position == *p),
                    "missing posting"
                );
            }
        }
    }
}
