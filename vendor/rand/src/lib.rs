//! Offline stand-in for the `rand` crate (0.9-style API surface).
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the slice of `rand` the workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::random::<f64 | bool | uN>()`.
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! and high-quality, though the streams differ from upstream `StdRng`.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of reproducible generators from integer seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an RNG's raw output.
pub trait StandardUniform: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardUniform for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardUniform for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl StandardUniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly (unit interval for floats, full range for
    /// integers, fair coin for `bool`).
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(2);
        let heads = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4_000..6_000).contains(&heads), "{heads}");
    }
}
