//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// An inclusive size interval for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

/// Generates a `Vec` whose length falls in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64 + 1;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_length_spans_the_range() {
        let strat = vec(0u8..10, 2..6usize);
        let mut rng = TestRng::from_name("vec-tests");
        let mut lens = [0usize; 8];
        for _ in 0..400 {
            let v = strat.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
            lens[v.len()] += 1;
            assert!(v.iter().all(|&x| x < 10));
        }
        assert!(lens[2] > 0 && lens[3] > 0 && lens[4] > 0 && lens[5] > 0);
    }

    #[test]
    fn nested_vec_composes() {
        let strat = vec(vec(0u8..3, 0..12usize), 1..8usize);
        let mut rng = TestRng::from_name("nested-vec");
        for _ in 0..100 {
            let vv = strat.sample(&mut rng);
            assert!((1..8).contains(&vv.len()));
            for v in vv {
                assert!(v.len() < 12);
            }
        }
    }
}
