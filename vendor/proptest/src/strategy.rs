//! The [`Strategy`] trait and the core combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a sampler over a deterministic RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates from `self`, then from the strategy `f` produces.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Builds a recursive strategy: `self` generates leaves, and `branch`
    /// wraps an inner strategy into a composite, up to `depth` levels.
    /// (`_desired_size` and `_expected_branch_size` are accepted for API
    /// compatibility; generation depth is statically bounded instead.)
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            // At each level prefer branching 2:1 so composites dominate
            // while every path still bottoms out at `leaf`.
            current =
                Union::weighted(vec![(1, leaf.clone()), (2, branch(current).boxed())]).boxed();
        }
        current
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe sampling, used behind [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn sample_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_dyn(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Weighted choice among strategies of one value type (see
/// [`prop_oneof!`](crate::prop_oneof)).
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union { options: self.options.clone(), total_weight: self.total_weight }
    }
}

impl<T> Union<T> {
    /// Uniform choice among `options`.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        Union::weighted(options.into_iter().map(|s| (1, s)).collect())
    }

    /// Choice among `options` proportional to each weight.
    pub fn weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!options.is_empty(), "Union of zero strategies");
        let total_weight = options.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "Union weights sum to zero");
        Union { options, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (w, s) in &self.options {
            if pick < *w as u64 {
                return s.sample(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u64;
                (*self.start() as i128 + rng.below(span) as i128) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                // Closed floating ranges: sampling the half-open range is
                // indistinguishable in practice.
                self.start() + (rng.unit_f64() as $t) * (self.end() - self.start())
            }
        }
    )+};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::from_name("strategy-tests")
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = rng();
        for _ in 0..1_000 {
            let v: u8 = (0u8..3).sample(&mut rng);
            assert!(v < 3);
            let w: usize = (0usize..=4).sample(&mut rng);
            assert!(w <= 4);
            let x: f64 = (-50.0f64..50.0).sample(&mut rng);
            assert!((-50.0..50.0).contains(&x));
            let y: i64 = (-1i64..1000).sample(&mut rng);
            assert!((-1..1000).contains(&y));
        }
    }

    #[test]
    fn map_and_tuple_compose() {
        let strat = (0u64..10, 0u64..10).prop_map(|(a, b)| a + b);
        let mut rng = rng();
        for _ in 0..100 {
            assert!(strat.sample(&mut rng) < 19);
        }
    }

    #[test]
    fn union_hits_every_option() {
        let strat = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed(), Just(3u8).boxed()]);
        let mut rng = rng();
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[strat.sample(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    #[test]
    fn recursive_strategy_terminates_and_varies_depth() {
        #[derive(Debug, Clone)]
        enum Tree {
            #[allow(dead_code)] // the payload exercises Clone/Debug through the strategy
            Leaf(u8),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0u8..3).prop_map(Tree::Leaf).boxed().prop_recursive(4, 24, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = rng();
        let mut max_depth = 0;
        for _ in 0..300 {
            max_depth = max_depth.max(depth(&strat.sample(&mut rng)));
        }
        assert!(max_depth >= 2, "recursion never branched (max depth {max_depth})");
        assert!(max_depth <= 4, "depth bound exceeded (max depth {max_depth})");
    }
}
