//! The case runner and its deterministic RNG.

/// Configuration for a [`proptest!`](crate::proptest) block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases each test must run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the test panics with this message.
    Fail(String),
    /// A `prop_assume!` precondition failed; the case is discarded.
    Reject(&'static str),
}

/// Deterministic RNG for sampling strategies (xoshiro256++ seeded from the
/// test name, so every run of a given test sees the same cases).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Derives a generator from a test's name.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name, then SplitMix64 expansion.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut next = || {
            h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = h;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng { s: [next(), next(), next(), next()] }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift bounded sampling (Lemire); bias is negligible for
        // the small bounds used in strategies.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Drives one property test: samples and runs cases until `cfg.cases`
/// succeed, panicking on the first failing case.
pub fn run_cases<F>(cfg: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::from_name(name);
    let mut passed: u32 = 0;
    let mut rejected: u32 = 0;
    let max_rejects = cfg.cases.saturating_mul(16).saturating_add(256);
    while passed < cfg.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(why)) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "proptest `{name}`: too many rejected cases \
                         ({rejected} rejections, last: {why})"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest `{name}` failed at case {passed} \
                     (deterministic seed — rerun reproduces it):\n{msg}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::from_name("bound");
        for _ in 0..10_000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_case_panics() {
        run_cases(&ProptestConfig::with_cases(4), "always_fails", |_rng| {
            Err(TestCaseError::Fail("nope".into()))
        });
    }

    #[test]
    fn rejections_are_discarded() {
        let mut n = 0u32;
        run_cases(&ProptestConfig::with_cases(8), "flaky_assume", |_rng| {
            n += 1;
            if n.is_multiple_of(2) {
                Err(TestCaseError::Reject("every other"))
            } else {
                Ok(())
            }
        });
        assert_eq!(n, 15, "8 passes interleaved with 7 rejections");
    }
}
