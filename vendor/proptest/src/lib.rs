//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the slice of proptest the workspace's property tests use:
//! the [`proptest!`] macro, `prop_assert*`/`prop_assume!`, range and tuple
//! strategies, `prop::collection::vec`, `Just`, `prop_oneof!`, `prop_map`,
//! and `prop_recursive`. Cases are sampled from a deterministic per-test
//! RNG; there is **no shrinking** — a failure reports the sampled inputs
//! via `Debug` in the panic message instead of minimizing them. Swap back
//! to the real crate when a registry is available.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The public prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace alias so `prop::collection::vec(...)` works, as with the
    /// real crate's prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples the strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!({$cfg} $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!({$crate::test_runner::ProptestConfig::default()} $($rest)*);
    };
}

/// Internal: expands each test fn inside a [`proptest!`] block.
#[macro_export]
macro_rules! __proptest_items {
    ({$cfg:expr}) => {};
    ({$cfg:expr}
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            $crate::test_runner::run_cases(&__cfg, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), __rng);)+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                __outcome
            });
        }
        $crate::__proptest_items!({$cfg} $($rest)*);
    };
}

/// Asserts a condition inside a property test; on failure the current case
/// is reported (with the formatted message) instead of unwinding mid-case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{}\n  left: {:?}\n right: {:?}", format!($($fmt)+), __l, __r),
            ));
        }
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

/// Discards the current case (it does not count towards `cases`) when the
/// sampled inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Uniformly picks one of several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
