//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the small slice of the `parking_lot` API the workspace uses
//! (`Mutex::lock`, `RwLock::read`/`write` without poisoning), backed by the
//! std primitives. Swap back to the real crate when a registry is available.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new rwlock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}
