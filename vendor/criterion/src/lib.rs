//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! and the `criterion_group!`/`criterion_main!` macros — backed by a simple
//! calibrated timing loop instead of criterion's statistical machinery.
//! Results print as `bench <name> ... <time>/iter`. Swap back to the real
//! crate when a registry is available.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Per-benchmark time budget once calibrated.
const MEASURE_BUDGET: Duration = Duration::from_millis(40);

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().label, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), _criterion: self }
    }
}

/// A named collection of benchmarks (prefixes each benchmark's label).
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in sizes runs by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stand-in sizes runs by time.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id.into().label), &mut f);
        self
    }

    /// Runs one benchmark that borrows a prepared input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.label), &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies a benchmark, optionally parameterized (`name/param`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id labelled `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", name.into(), parameter) }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the
/// routine to measure.
pub struct Bencher {
    per_iter: Option<Duration>,
}

impl Bencher {
    /// Measures `routine` with a calibrated batch loop.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: grow the batch until it costs ~1/8 of the budget.
        let mut batch: u64 = 1;
        let threshold = MEASURE_BUDGET / 8;
        loop {
            let t = time_batch(batch, &mut routine);
            if t >= threshold || batch >= 1 << 30 {
                break;
            }
            batch *= 2;
        }
        // Measure: run batches until the budget is spent, keep the best
        // (least-noisy) per-iteration time.
        let mut best = Duration::MAX;
        let mut spent = Duration::ZERO;
        let mut samples = 0;
        while spent < MEASURE_BUDGET || samples < 3 {
            let t = time_batch(batch, &mut routine);
            best = best.min(t / batch as u32);
            spent += t;
            samples += 1;
        }
        self.per_iter = Some(best);
    }
}

fn time_batch<O, F: FnMut() -> O>(batch: u64, routine: &mut F) -> Duration {
    let start = Instant::now();
    for _ in 0..batch {
        std::hint::black_box(routine());
    }
    start.elapsed()
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let mut bencher = Bencher { per_iter: None };
    f(&mut bencher);
    match bencher.per_iter {
        Some(t) => println!("bench {label:<48} {:>12}/iter", format_duration(t)),
        None => println!("bench {label:<48} (no measurement: Bencher::iter never called)"),
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Bundles benchmark functions into one named runner, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_a_measurement() {
        let mut b = Bencher { per_iter: None };
        b.iter(|| std::hint::black_box(3u64).wrapping_mul(5));
        assert!(b.per_iter.is_some());
    }

    #[test]
    fn benchmark_id_formats_name_and_parameter() {
        assert_eq!(BenchmarkId::new("fft", 256).label, "fft/256");
        assert_eq!(BenchmarkId::from_parameter(42).label, "42");
    }

    #[test]
    fn group_and_function_apis_compose() {
        let mut c = Criterion::default();
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(10).bench_function("inner", |b| b.iter(|| 2 + 2));
        g.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &x| b.iter(|| x * x));
        g.finish();
    }
}
