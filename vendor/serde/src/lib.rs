//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! keeps `#[derive(Serialize, Deserialize)]` annotations compiling without
//! providing a real data model. The traits are markers with blanket impls
//! (every type "is serializable"), and the derives expand to nothing.
//! Nothing in the workspace currently performs serde-based serialization —
//! persistence uses hand-written text formats (`saq-core::persist`). Swap
//! back to the real crate when a registry is available.

pub use serde_derive::{Deserialize, Serialize};

/// Marker for serializable types. Blanket-implemented for everything.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker for deserializable types. Blanket-implemented for everything.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
