//! Offline stand-in for `serde_derive`: the derives expand to nothing.
//! The companion `serde` stand-in gives the traits blanket impls, so types
//! still satisfy `Serialize`/`Deserialize` bounds.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
